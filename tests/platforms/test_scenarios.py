"""Table III scenario projection."""

from __future__ import annotations

import pytest

from repro.core import CostRegime
from repro.exceptions import UnknownScenarioError
from repro.platforms import (
    SCENARIO_IDS,
    build_model,
    get_platform,
    get_scenario,
    scenario_costs,
)


class TestProjectionAnchoring:
    """Every scenario must reproduce the measured (C_ref, V_ref) at P_ref."""

    @pytest.mark.parametrize("platform", ["Hera", "Atlas", "Coastal", "CoastalSSD"])
    @pytest.mark.parametrize("scenario_id", SCENARIO_IDS)
    def test_costs_anchor_at_reference(self, platform, scenario_id):
        p = get_platform(platform)
        costs = scenario_costs(p, scenario_id)
        P_ref = p.reference_processors
        assert costs.checkpoint_cost(P_ref) == pytest.approx(p.checkpoint_cost)
        assert costs.verification_cost(P_ref) == pytest.approx(p.verification_cost)
        assert costs.recovery_cost(P_ref) == pytest.approx(p.checkpoint_cost)


class TestScalabilityForms:
    def test_scenario1_checkpoint_linear(self):
        costs = scenario_costs("Hera", 1)
        assert costs.checkpoint_cost(1024) == pytest.approx(600.0)  # 2x P_ref
        assert costs.verification_cost(1024) == pytest.approx(15.4)  # constant

    def test_scenario2_verification_decays(self):
        costs = scenario_costs("Hera", 2)
        assert costs.verification_cost(1024) == pytest.approx(7.7)

    def test_scenario3_both_constant(self):
        costs = scenario_costs("Hera", 3)
        assert costs.checkpoint_cost(64) == costs.checkpoint_cost(65536) == 300.0
        assert costs.verification_cost(64) == 15.4

    def test_scenario5_checkpoint_decays(self):
        costs = scenario_costs("Hera", 5)
        assert costs.checkpoint_cost(1024) == pytest.approx(150.0)
        assert costs.checkpoint_cost(256) == pytest.approx(600.0)

    def test_scenario6_everything_decays(self):
        costs = scenario_costs("Hera", 6)
        assert costs.combined_cost(1024) == pytest.approx((300.0 + 15.4) / 2.0)

    @pytest.mark.parametrize(
        "scenario_id, regime",
        [
            (1, CostRegime.LINEAR),
            (2, CostRegime.LINEAR),
            (3, CostRegime.CONSTANT),
            (4, CostRegime.CONSTANT),
            (5, CostRegime.CONSTANT),  # constant verification keeps d > 0
            (6, CostRegime.DECAYING),
        ],
    )
    def test_regime_mapping_matches_section_iv(self, scenario_id, regime):
        # Scenarios 1-2 -> Theorem 2, 3-5 -> Theorem 3, 6 -> case 3.
        assert scenario_costs("Hera", scenario_id).regime is regime


class TestLookupAndBuild:
    def test_get_scenario_labels(self):
        s = get_scenario(1)
        assert s.checkpoint_form == "cP"
        assert s.verification_form == "v"
        assert "cP" in s.label

    def test_unknown_scenario(self):
        with pytest.raises(UnknownScenarioError):
            get_scenario(7)

    def test_build_model_defaults(self):
        model = build_model("Hera", 1)
        assert model.alpha == 0.1
        assert model.costs.downtime == 3600.0
        assert model.errors.lambda_ind == 1.69e-8

    def test_build_model_overrides(self):
        model = build_model("Atlas", 3, alpha=0.01, downtime=60.0, lambda_ind=1e-10)
        assert model.alpha == 0.01
        assert model.costs.downtime == 60.0
        assert model.errors.lambda_ind == 1e-10
        assert model.errors.fail_stop_fraction == 0.0625

    def test_downtime_plumbing(self):
        costs = scenario_costs("Hera", 1, downtime=123.0)
        assert costs.downtime == 123.0

    def test_build_model_accepts_platform_object(self):
        p = get_platform("Coastal")
        model = build_model(p, 4)
        assert model.errors.lambda_ind == 2.34e-9

    def test_cost_reference_overrides(self):
        """Scenario-lab perturbations refit the forms through overrides."""
        costs = scenario_costs("Hera", 1, checkpoint_cost=330.0,
                               verification_cost=20.0)
        assert costs.checkpoint_cost(512) == pytest.approx(330.0)
        assert costs.verification_cost(512) == pytest.approx(20.0)
        # The scenario form still extrapolates (scenario 1: C_P = cP).
        assert costs.checkpoint_cost(1024) == pytest.approx(660.0)
        model = build_model("Hera", 3, checkpoint_cost=150.0)
        assert model.costs.checkpoint_cost(4096) == pytest.approx(150.0)
        # No override: the catalog measurement, unchanged.
        assert build_model("Hera", 3).costs.checkpoint_cost(512) == pytest.approx(300.0)
