"""Table II platform catalog."""

from __future__ import annotations

import pytest

from repro.exceptions import UnknownPlatformError
from repro.platforms import PLATFORM_NAMES, PLATFORMS, get_platform
from repro.platforms.catalog import DEFAULT_ALPHA, DEFAULT_DOWNTIME


class TestTableII:
    """Every number of Table II, verbatim."""

    @pytest.mark.parametrize(
        "name, lam, f, p_ref, cp, vp",
        [
            ("Hera", 1.69e-8, 0.2188, 512, 300.0, 15.4),
            ("Atlas", 1.62e-8, 0.0625, 1024, 439.0, 9.1),
            ("Coastal", 2.34e-9, 0.1667, 2048, 1051.0, 4.5),
            ("CoastalSSD", 2.34e-9, 0.1667, 2048, 2500.0, 180.0),
        ],
    )
    def test_row(self, name, lam, f, p_ref, cp, vp):
        p = PLATFORMS[name]
        assert p.lambda_ind == lam
        assert p.fail_stop_fraction == f
        assert p.reference_processors == p_ref
        assert p.checkpoint_cost == cp
        assert p.verification_cost == vp

    def test_silent_fractions_match_table(self):
        assert PLATFORMS["Hera"].silent_fraction == pytest.approx(0.7812)
        assert PLATFORMS["Atlas"].silent_fraction == pytest.approx(0.9375)
        assert PLATFORMS["Coastal"].silent_fraction == pytest.approx(0.8333)

    def test_canonical_order(self):
        assert PLATFORM_NAMES == ("Hera", "Atlas", "Coastal", "CoastalSSD")

    def test_defaults_match_section_iv(self):
        assert DEFAULT_DOWNTIME == 3600.0  # one hour
        assert DEFAULT_ALPHA == 0.1


class TestLookup:
    def test_case_insensitive(self):
        assert get_platform("hera").name == "Hera"
        assert get_platform("HERA").name == "Hera"

    def test_ssd_aliases(self):
        for alias in ("CoastalSSD", "coastal ssd", "coastal-ssd", "coastal_ssd"):
            assert get_platform(alias).name == "CoastalSSD"

    def test_unknown_raises(self):
        with pytest.raises(UnknownPlatformError):
            get_platform("Titan")


class TestErrorModelConstruction:
    def test_error_model_from_platform(self):
        m = get_platform("Hera").error_model()
        assert m.lambda_ind == 1.69e-8
        assert m.fail_stop_fraction == 0.2188

    def test_lambda_override(self):
        m = get_platform("Hera").error_model(lambda_ind=1e-12)
        assert m.lambda_ind == 1e-12
        assert m.fail_stop_fraction == 0.2188  # fraction preserved

    def test_platform_mtbfs_are_years_scale(self):
        # Individual MTBFs of these platforms are 1.9-13.5 years:
        # 'sufficiently large' in the Section III-B sense.
        for name in PLATFORM_NAMES:
            years = get_platform(name).error_model().mtbf_ind_years
            assert 1.0 < years < 20.0
