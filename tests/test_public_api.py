"""Public API surface: imports, __all__, version, docstrings."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.9.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_quickstart_from_docstring(self):
        model = repro.build_model("Hera", scenario_id=1)
        sol = repro.optimal_pattern(model)
        assert round(sol.processors) == 219
        assert round(sol.period) == 6239

    def test_key_classes_importable_from_top(self):
        assert repro.PatternModel is not None
        assert repro.AmdahlSpeedup is not None
        assert repro.ErrorModel is not None


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.core.speedup",
        "repro.core.costs",
        "repro.core.errors",
        "repro.core.pattern",
        "repro.core.first_order",
        "repro.core.young_daly",
        "repro.core.validity",
        "repro.core.makespan",
        "repro.optimize",
        "repro.optimize.scalar",
        "repro.optimize.grid",
        "repro.optimize.period",
        "repro.optimize.allocation",
        "repro.optimize.relaxation",
        "repro.platforms",
        "repro.platforms.catalog",
        "repro.platforms.scenarios",
        "repro.baselines",
        "repro.baselines.error_free",
        "repro.baselines.failstop_only",
        "repro.sim",
        "repro.sim.rng",
        "repro.sim.engine",
        "repro.sim.events",
        "repro.sim.protocol",
        "repro.sim.batch",
        "repro.sim.results",
        "repro.sim.montecarlo",
        "repro.sim.streams",
        "repro.sim.renewal",
        "repro.sim.nodes",
        "repro.sim.trace",
        "repro.analysis",
        "repro.analysis.asymptotics",
        "repro.analysis.sensitivity",
        "repro.analysis.waste",
        "repro.io",
        "repro.io.tables",
        "repro.io.csvout",
        "repro.io.report",
        "repro.experiments",
        "repro.experiments.runner",
        "repro.experiments.ext_segments",
        "repro.experiments.ext_weibull",
        "repro.experiments.ext_weakscaling",
        "repro.experiments.ext_nodes",
        "repro.extensions",
        "repro.extensions.twolevel",
        "repro.extensions.sim_twolevel",
        "repro.units",
        "repro.exceptions",
    ],
)
class TestModules:
    def test_imports(self, module):
        mod = importlib.import_module(module)
        assert mod is not None

    def test_has_docstring(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} lacks a module docstring"

    def test_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name!r}"


class TestDocstrings:
    def test_public_functions_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not isinstance(obj, type):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"undocumented public callables: {undocumented}"

    def test_public_classes_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, f"undocumented public classes: {undocumented}"
