"""Determinism of the fused simulation pipeline.

The contract: for a fixed seed, the pipeline produces figure tables
**bit-identical** to the sequential per-point path — whatever the job
count, and whether the disk cache is cold, warm, or absent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ext_nodes,
    ext_weibull,
    fig2_scenarios,
    fig3_processors,
    fig4_alpha,
    fig5_error_rate,
    fig6_alpha_zero,
    fig7_downtime,
)
from repro.experiments.common import SimSettings, simulate_mean
from repro.experiments.pipeline import Deferred, SimulationPipeline, materialize
from repro.exceptions import SimulationError
from repro.platforms.scenarios import build_model
from repro.sim.montecarlo import Fidelity

#: Tiny but non-trivial budget: every point still samples real failures.
SETTINGS = SimSettings(fidelity=Fidelity(n_runs=8, n_patterns=12), seed=42)


def _tiny_fig_runs(pipeline=None):
    """One cheap invocation of every simulation-heavy figure module."""
    return [
        fig2_scenarios.run(scenarios=(1, 3), settings=SETTINGS, pipeline=pipeline),
        fig3_processors.run(
            scenarios=(1,),
            processors=np.array([256.0, 512.0]),
            settings=SETTINGS,
            pipeline=pipeline,
        ),
        fig4_alpha.run(alphas=(0.1, 0.01), scenarios=(1,), settings=SETTINGS, pipeline=pipeline),
        fig5_error_rate.run(
            lambdas=np.array([1e-10, 1e-9]),
            scenarios=(1,),
            settings=SETTINGS,
            pipeline=pipeline,
        ),
        fig6_alpha_zero.run(
            lambdas=np.array([1e-10, 1e-9]),
            scenarios=(1,),
            settings=SETTINGS,
            pipeline=pipeline,
        ),
        fig7_downtime.run(
            downtimes=np.array([0.0, 3600.0]),
            scenarios=(1,),
            settings=SETTINGS,
            pipeline=pipeline,
        ),
        ext_weibull.run(scenarios=(1,), shapes=(1.0,), settings=SETTINGS, pipeline=pipeline),
        ext_nodes.run(scenarios=(1,), settings=SETTINGS, pipeline=pipeline),
    ]


@pytest.fixture(scope="module")
def serial_tables():
    """Reference: every figure on a private serial pipeline."""
    return _tiny_fig_runs()


class TestTableDeterminism:
    def test_shared_pipeline_jobs2_is_bit_identical(self, serial_tables):
        with SimulationPipeline(jobs=2) as pipe:
            assert _tiny_fig_runs(pipe) == serial_tables

    def test_cold_then_warm_cache_is_bit_identical(self, serial_tables, tmp_path):
        with SimulationPipeline(jobs=2, cache_dir=tmp_path) as pipe:
            cold = _tiny_fig_runs(pipe)
            assert pipe.cache.misses > 0 and pipe.cache.hits == 0
        with SimulationPipeline(jobs=2, cache_dir=tmp_path) as pipe:
            warm = _tiny_fig_runs(pipe)
            assert pipe.cache.misses == 0 and pipe.cache.hits > 0
        assert cold == serial_tables
        assert warm == serial_tables

    def test_repeated_run_on_one_pipeline_hits_the_memo(self):
        with SimulationPipeline(jobs=1) as pipe:
            first = fig2_scenarios.run(scenarios=(1,), settings=SETTINGS, pipeline=pipe)
            computed = pipe.points_computed
            second = fig2_scenarios.run(scenarios=(1,), settings=SETTINGS, pipeline=pipe)
            assert second == first
            assert pipe.points_computed == computed  # no recomputation


class TestPointDeterminism:
    @pytest.mark.parametrize("jobs", [1, 2, 3])
    def test_pipeline_matches_simulate_mean(self, jobs):
        points = [
            (build_model("Hera", sc), T, P)
            for sc in (1, 3)
            for T, P in ((6000.0, 256.0), (4000.0, 512.0))
        ]
        sequential = [simulate_mean(m, T, P, SETTINGS) for m, T, P in points]
        with SimulationPipeline(jobs=jobs) as pipe:
            deferred = [pipe.simulate_mean(m, T, P, SETTINGS) for m, T, P in points]
            pipe.resolve()
        assert [d.value for d in deferred] == sequential

    def test_workers_setting_preserved_through_pipeline(self):
        settings = SimSettings(
            fidelity=Fidelity(n_runs=50, n_patterns=100),
            seed=9,
            method="vectorized",
            workers=2,
        )
        model = build_model("Hera", 1)
        sequential = simulate_mean(model, 6000.0, 256.0, settings)
        with SimulationPipeline(jobs=2) as pipe:
            d = pipe.simulate_mean(model, 6000.0, 256.0, settings)
            pipe.resolve()
        assert d.value == sequential

    def test_duplicate_points_share_one_computation(self):
        model = build_model("Hera", 1)
        with SimulationPipeline(jobs=1) as pipe:
            a = pipe.simulate_mean(model, 6000.0, 256.0, SETTINGS)
            b = pipe.simulate_mean(model, 6000.0, 256.0, SETTINGS)
            pipe.resolve()
            assert a.value == b.value
            assert pipe.points_submitted == 2
            assert pipe.points_computed == 1


class TestPrivatePipeline:
    def test_sized_from_settings_workers(self):
        from repro.experiments.pipeline import private_pipeline

        assert private_pipeline(SETTINGS).pool.workers == 1
        sized = private_pipeline(
            SimSettings(fidelity=SETTINGS.fidelity, seed=1, workers=3)
        )
        assert sized.pool.workers == 3
        sized.close()

    def test_direct_run_with_workers_still_bit_identical(self):
        # A library caller passing SimSettings(workers=2) and no
        # pipeline gets a private 2-worker pool — same numbers.
        settings = SimSettings(fidelity=SETTINGS.fidelity, seed=42, workers=2)
        baseline = fig2_scenarios.run(scenarios=(1,), settings=settings)
        rerun = fig2_scenarios.run(scenarios=(1,), settings=settings)
        assert baseline == rerun


class TestDeferredSemantics:
    def test_simulate_disabled_resolves_immediately(self):
        model = build_model("Hera", 1)
        pipe = SimulationPipeline()
        d = pipe.simulate_mean(model, 6000.0, 256.0, SimSettings(simulate=False))
        assert d.ready and d.value is None

    def test_reading_pending_deferred_raises(self):
        model = build_model("Hera", 1)
        pipe = SimulationPipeline()
        d = pipe.simulate_mean(model, 6000.0, 256.0, SETTINGS)
        with pytest.raises(SimulationError):
            _ = d.value

    def test_materialize_walks_nested_rows(self):
        d = Deferred.resolved(1.5)
        rows = [(1, d, None), {"x": [d, (d,)]}]
        assert materialize(rows) == [(1, 1.5, None), {"x": [1.5, (1.5,)]}]

    def test_no_sim_figure_has_no_pending_work(self):
        with SimulationPipeline(jobs=1) as pipe:
            results = fig2_scenarios.run(
                scenarios=(1,), settings=SimSettings(simulate=False), pipeline=pipe
            )
            assert pipe.points_submitted == 0
        assert results[0].column("H_optimal_sim") == [None]


class TestOnRoundStagingLoop:
    """resolve(on_round=...) keeps scheduling while staging continues."""

    def test_on_round_stages_into_the_same_resolve_call(self):
        model = build_model("Hera", 1)
        with SimulationPipeline(jobs=1) as pipe:
            first = pipe.simulate_mean(model, 6000.0, 256.0, SETTINGS)
            staged = []

            def on_round():
                if not first.ready:
                    return False
                if not staged:
                    staged.append(
                        pipe.simulate_mean(model, 4000.0, 512.0, SETTINGS)
                    )
                    return True
                return False  # second round done: stop the loop

            pipe.resolve(on_round=on_round)
        assert first.ready and staged[0].ready
        assert staged[0].value == simulate_mean(model, 4000.0, 512.0, SETTINGS)

    def test_on_round_safety_net_runs_without_pending_points(self):
        """Cache-/analytic-served rounds fire no events; on_round still
        gets its say, and a falsy return ends the loop."""
        calls = []
        with SimulationPipeline(jobs=1) as pipe:
            pipe.resolve(on_round=lambda: calls.append(1) and False)
        assert calls == [1]

    def test_without_on_round_single_round_behaviour_is_unchanged(self):
        model = build_model("Hera", 1)
        with SimulationPipeline(jobs=1) as pipe:
            d = pipe.simulate_mean(model, 6000.0, 256.0, SETTINGS)
            pipe.resolve()
            late = pipe.simulate_mean(model, 4000.0, 512.0, SETTINGS)
        assert d.ready and not late.ready
