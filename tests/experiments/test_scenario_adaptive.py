"""Adaptive replicate scheduling: convergence, determinism, resume.

The acceptance contract of the adaptive engine: an adaptive scenario
report is **byte-identical** across serial, pooled and scheduled
execution (pinned against ``goldens/scenario_fig5_adaptive_bands.txt``),
``run --out`` followed by ``aggregate`` reproduces the exact band
tables from disk, a run killed mid-flight resumes to the identical
output with zero recomputation and the journaled stopping decisions
reused — and the fixed path (no ``--adaptive``) stays byte-identical
to the PR 5 goldens, which ``test_scenario_lab`` pins.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.exceptions import InvalidParameterError, ReproError
from repro.experiments.common import FigureResult
from repro.experiments.runner import main
from repro.experiments.scenarios import (
    AdaptivePolicy,
    BandSpec,
    FamilyAccumulator,
    Resample,
    ScenarioSet,
    adaptive_notes,
    band_tables,
    load_member_results,
    load_scenario_toml,
    relative_width,
    split_replicates,
    aggregate_results,
)
from repro.experiments.scenarios.transforms import Jitter
from repro.sim.faults import CRASH_EXIT_CODE

GOLDEN = Path(__file__).parent / "goldens" / "scenario_fig5_adaptive_bands.txt"
EXAMPLE = Path(__file__).parents[2] / "examples" / "scenario_jitter.toml"

#: Reduced budget matching the adaptive golden.
FAST_ARGS = ["--runs", "4", "--patterns", "6"]


# -- policy validation -------------------------------------------------------


class TestAdaptivePolicy:
    def test_defaults_are_valid(self):
        policy = AdaptivePolicy()
        assert policy.min_replicates <= policy.max_replicates
        assert policy.to_dict()["band_tol"] == 0.05

    def test_validation(self):
        with pytest.raises(InvalidParameterError, match="min replicates"):
            AdaptivePolicy(min_replicates=0)
        with pytest.raises(InvalidParameterError, match="max replicates"):
            AdaptivePolicy(min_replicates=5, max_replicates=4)
        with pytest.raises(InvalidParameterError, match="wave size"):
            AdaptivePolicy(wave=0)
        with pytest.raises(InvalidParameterError, match="band tolerance"):
            AdaptivePolicy(band_tol=0.0)
        with pytest.raises(InvalidParameterError, match="stable waves"):
            AdaptivePolicy(stable_waves=0)

    def test_split_replicates(self):
        rest, count = split_replicates(
            (Jitter(axis="alpha", width=0.1), Resample(7))
        )
        assert count == 7
        assert all(not isinstance(t, Resample) for t in rest)
        rest, count = split_replicates((Jitter(axis="alpha", width=0.1),))
        assert count == 1
        with pytest.raises(InvalidParameterError, match="at most one resample"):
            split_replicates((Resample(2), Resample(3)))


# -- the convergence quantity ------------------------------------------------


class TestRelativeWidth:
    BAND = BandSpec(q_lo=0.0, q_hi=1.0)

    def test_plain_relative_width(self):
        # band [10, 30] around median 20 -> (30-10)/20.
        assert relative_width([10.0, 20.0, 30.0], self.BAND) == pytest.approx(1.0)

    def test_no_finite_values_is_trivially_converged(self):
        assert relative_width([], self.BAND) == 0.0
        assert relative_width([None, None], self.BAND) == 0.0
        assert relative_width([float("nan")], self.BAND) == 0.0

    def test_zero_median_falls_back_to_absolute_spread(self):
        assert relative_width([-1.0, 0.0, 1.0], self.BAND) == pytest.approx(2.0)
        assert relative_width([0.0, 0.0], self.BAND) == 0.0

    def test_non_finite_members_are_dropped(self):
        clean = relative_width([10.0, 20.0, 30.0], self.BAND)
        assert relative_width(
            [10.0, float("nan"), 20.0, float("inf"), 30.0], self.BAND
        ) == pytest.approx(clean)


# -- consistency score -------------------------------------------------------


def _table(values, columns=("x", "sc1_optimal")):
    return FigureResult(
        figure_id="t", title="T", columns=columns,
        rows=tuple((float(i), v) for i, v in enumerate(values)),
    )


class TestConsistencyScore:
    def test_off_by_default_on_by_request(self):
        members = [[_table([100.0, 50.0])], [_table([100.0, 80.0])]]
        (plain,) = band_tables(members, BandSpec(), panel_columns=(("P_num",),))
        assert "consistency" not in plain.columns
        (scored,) = band_tables(
            members, BandSpec(consistency=True), panel_columns=(("P_num",),)
        )
        assert scored.columns[-1] == "consistency"
        assert scored.rows[0][-1] == 1.0   # both members at 100: full agreement
        assert scored.rows[1][-1] == 0.5   # 80 vs base 50: 1 of 2 agree
        assert any("consistency" in n for n in scored.notes)

    def test_validity_flip_scores_against_base(self):
        members = [[_table([100.0])], [_table([None])], [_table([101.0])]]
        (scored,) = band_tables(
            members, BandSpec(consistency=True, flip_tolerance=0.05),
            panel_columns=(("P_num",),),
        )
        # base + the 101 member agree; the None member does not.
        assert scored.rows[0][-1] == pytest.approx(2 / 3)


# -- the incremental accumulator ---------------------------------------------


class TestFamilyAccumulator:
    def test_full_coverage_matches_band_tables(self):
        members = [
            [_table([10.0, 1.0])], [_table([20.0, 2.0])], [_table([30.0, 4.0])]
        ]
        band = BandSpec(q_lo=0.0, q_hi=1.0)
        (expected,) = band_tables(members, band, panel_columns=(("H_sim",),))
        accum = FamilyAccumulator(band, panel_columns=(("H_sim",),))
        for tables in members:
            accum.add_member(tables)
        (got,) = accum.finish()
        # Same band triplets per row; the accumulator adds the per-row
        # coverage column at the end.
        assert got.columns == expected.columns + ("n_members",)
        for row, exp in zip(got.rows, expected.rows):
            assert row[:-1] == exp
            assert row[-1] == 3

    def test_partial_rows_band_over_their_own_cloud(self):
        accum = FamilyAccumulator(BandSpec(q_lo=0.0, q_hi=1.0))
        accum.add_member([_table([10.0, 1.0])])
        accum.add_member([_table([20.0, 3.0])])
        # A converged row 0: the third member only covers row 1.
        accum.add_member([_table([5.0])], rows=(1,))
        assert accum.coverage(0) == 2 and accum.coverage(1) == 3
        (got,) = accum.finish()
        assert got.rows[0][1:4] == (15.0, 10.0, 20.0)  # two members
        assert got.rows[1][1:4] == (3.0, 1.0, 5.0)     # three members
        assert got.rows[0][-1] == 2 and got.rows[1][-1] == 3

    def test_row_width_is_the_worst_cell(self):
        accum = FamilyAccumulator(BandSpec(q_lo=0.0, q_hi=1.0))
        accum.add_member([_table([10.0, 100.0])])
        accum.add_member([_table([30.0, 101.0])])
        assert accum.row_width(0) == pytest.approx(20.0 / 20.0)
        assert accum.row_width(1) == pytest.approx(1.0 / 100.5)

    def test_first_member_must_cover_the_full_grid(self):
        accum = FamilyAccumulator()
        with pytest.raises(InvalidParameterError, match="full grid"):
            accum.add_member([_table([1.0])], rows=(0,))

    def test_rows_outside_the_grid_rejected(self):
        accum = FamilyAccumulator()
        accum.add_member([_table([1.0, 2.0])])
        with pytest.raises(InvalidParameterError, match="outside"):
            accum.add_member([_table([1.0])], rows=(5,))

    def test_shape_mismatch_rejected(self):
        accum = FamilyAccumulator()
        accum.add_member([_table([1.0, 2.0])])
        with pytest.raises(InvalidParameterError, match="disagree in shape"):
            accum.add_member([_table([1.0])], rows=(0, 1))

    def test_empty_family_rejected(self):
        with pytest.raises(InvalidParameterError, match="empty family"):
            FamilyAccumulator().finish()

    def test_adaptive_notes_shape(self):
        notes = adaptive_notes(
            AdaptivePolicy().to_dict(),
            {"n_rows": 9, "rows_converged": 9, "rows_staged": 130,
             "fixed_rows": 216, "saved_rows": 86},
        )
        assert notes == (
            "adaptive replicates: 3..12 in waves of 2 "
            "(band tol 0.05, 2 stable waves)",
            "converged 9/9 grid rows; simulated 130 member-rows of 216 "
            "fixed-path equivalent (86 saved)",
        )


# -- TOML [adaptive] table ---------------------------------------------------


class TestAdaptiveToml:
    def _load(self, tmp_path, text):
        path = tmp_path / "scenario.toml"
        path.write_text(text)
        return load_scenario_toml(path)

    BASE = '[scenario]\nstudy = "fig5"\nreplicates = 2\n'

    def test_table_enables_and_overrides(self, tmp_path):
        sset = self._load(
            tmp_path,
            self.BASE + "[adaptive]\nmin_replicates = 2\nband_tol = 0.1\n",
        )
        assert sset.adaptive_enabled
        assert sset.adaptive.min_replicates == 2
        assert sset.adaptive.band_tol == 0.1
        assert sset.adaptive.wave == AdaptivePolicy().wave  # default kept

    def test_enabled_false_keeps_the_policy_dormant(self, tmp_path):
        sset = self._load(
            tmp_path, self.BASE + "[adaptive]\nenabled = false\nwave = 3\n"
        )
        assert not sset.adaptive_enabled
        assert sset.adaptive.wave == 3  # --adaptive on the CLI picks it up

    def test_no_table_means_fixed_path(self, tmp_path):
        sset = self._load(tmp_path, self.BASE)
        assert not sset.adaptive_enabled and sset.adaptive is None

    def test_unknown_keys_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="unknown keys"):
            self._load(tmp_path, self.BASE + "[adaptive]\nwaves = 2\n")

    def test_invalid_policy_carries_the_path(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="scenario.toml"):
            self._load(tmp_path, self.BASE + "[adaptive]\nmin_replicates = 0\n")


# -- CLI: golden, determinism, aggregate round trips -------------------------


class TestAdaptiveCli:
    def test_report_byte_identical_across_executors(self, tmp_path, capsys):
        golden = GOLDEN.read_text()
        cache = str(tmp_path / "cache")
        modes = (
            [],                                      # serial, cold cache
            ["--jobs", "2"],                         # pooled, warm cache
            ["--jobs", "2", "--max-inflight", "8"],  # scheduled window
        )
        for extra in modes:
            assert main(
                ["scenario", "report", str(EXAMPLE), "--adaptive", *FAST_ARGS,
                 "--cache-dir", cache, *extra]
            ) == 0
            out = capsys.readouterr().out
            assert out == golden, f"adaptive report diverged with {extra}"

    def test_progress_reports_waves_and_savings(self, tmp_path, capsys):
        assert main(
            ["scenario", "report", str(EXAMPLE), "--adaptive", *FAST_ARGS,
             "--progress"]
        ) == 0
        err = capsys.readouterr().err
        assert "[adaptive] fig5_jitter[Hera]: wave 0 stages replicates 0..2" \
            in err
        assert "rows converged" in err
        assert "member-rows simulated" in err

    def test_run_then_aggregate_matches_report(self, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(
            ["scenario", "run", str(EXAMPLE), "--adaptive", *FAST_ARGS,
             "--out", str(out)]
        ) == 0
        capsys.readouterr()
        assert main(["scenario", "aggregate", str(out)]) == 0
        aggregated = capsys.readouterr().out
        # The adaptive golden is the report output; aggregate re-derives
        # the identical ragged bands from the member files on disk.
        assert aggregated.strip() in GOLDEN.read_text()
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["adaptive"]["policy"] == AdaptivePolicy().to_dict()
        summary = manifest["adaptive"]["families"]["fig5_jitter[Hera]"]
        assert summary["summary"]["rows_converged"] == 9

    def test_member_files_carry_their_rows(self, tmp_path):
        out = tmp_path / "results"
        assert main(
            ["scenario", "run", str(EXAMPLE), "--adaptive", *FAST_ARGS,
             "--out", str(out)]
        ) == 0
        manifest, families = load_member_results(out)
        (family,) = families
        rows = [m.get("rows") for m in family["members"]]
        assert rows[0] is None          # wave 0 covers the full grid
        assert any(r is not None for r in rows)  # later waves restrict

    def test_format_json_round_trips(self, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(
            ["scenario", "run", str(EXAMPLE), "--adaptive", *FAST_ARGS,
             "--out", str(out)]
        ) == 0
        capsys.readouterr()
        assert main(["scenario", "aggregate", str(out), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        manifest, families = load_member_results(out)
        expected = aggregate_results(manifest, families)
        assert len(payload) == len(expected)
        for doc, result in zip(payload, expected):
            rebuilt = FigureResult(
                figure_id=doc["figure_id"], title=doc["title"],
                columns=tuple(doc["columns"]),
                rows=tuple(tuple(row) for row in doc["rows"]),
                notes=tuple(doc["notes"]),
            )
            assert rebuilt == result  # floats round-trip exactly via JSON

    def test_format_csv_is_tidy(self, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(
            ["scenario", "run", str(EXAMPLE), "--runs", "2", "--patterns", "2",
             "--no-sim", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        assert main(["scenario", "aggregate", str(out), "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "figure,row,column,value"
        manifest, families = load_member_results(out)
        results = aggregate_results(manifest, families)
        cells = sum(len(r.rows) * (len(r.columns) - 1) for r in results)
        assert len(lines) == 1 + cells

    def test_adaptive_flags_require_adaptive_mode(self):
        with pytest.raises(SystemExit, match="--adaptive"):
            main(["scenario", "report", str(EXAMPLE), *FAST_ARGS,
                  "--band-tol", "0.1"])

    def test_invalid_policy_exits_cleanly(self):
        with pytest.raises(SystemExit, match="min replicates"):
            main(["scenario", "report", str(EXAMPLE), "--adaptive", *FAST_ARGS,
                  "--min-replicates", "0"])


# -- crash -> resume: replayed decisions, zero duplicate work ----------------


def _manifest(runs_dir, run_id) -> dict:
    return json.loads((runs_dir / run_id / "manifest.json").read_text())


def _out_snapshot(out: Path) -> dict[str, str]:
    return {p.name: p.read_text() for p in sorted(out.glob("*.json"))}


class TestAdaptiveResume:
    def _args(self, tmp_path, out, run_id="a1"):
        return [
            "scenario", "run", str(EXAMPLE), "--adaptive", *FAST_ARGS,
            "--out", str(out),
            "--cache-dir", str(tmp_path / "cache"),
            "--runs-dir", str(tmp_path / "runs"),
            "--run-id", run_id,
        ]

    @pytest.mark.parametrize("crash_after", [40, 500])
    def test_crash_resume_replays_journaled_decisions(
        self, tmp_path, capsys, crash_after
    ):
        # Uninterrupted reference run (separate cache: no cross-talk).
        reference = tmp_path / "ref"
        assert main(
            ["scenario", "run", str(EXAMPLE), "--adaptive", *FAST_ARGS,
             "--out", str(reference),
             "--cache-dir", str(tmp_path / "refcache")]
        ) == 0
        capsys.readouterr()

        out = tmp_path / "out"
        args = self._args(tmp_path, out)
        assert main(
            args + ["--fault-plan", f"crash-after={crash_after}"]
        ) == CRASH_EXIT_CODE
        journaled = _manifest(tmp_path / "runs", "a1")
        assert journaled["status"] == "running"
        assert journaled["adaptive"]["policy"] == AdaptivePolicy().to_dict()
        capsys.readouterr()

        assert main(args + ["--resume"]) == 0
        capsys.readouterr()
        manifest = _manifest(tmp_path / "runs", "a1")
        assert manifest["status"] == "complete"
        # Zero duplicate work: every point computed before the crash is
        # reused, and the journaled stopping decisions are replayed.
        assert manifest["recomputed"] == 0
        assert manifest["reused"] == len(
            [k for k, fate in journaled["fates"].items() if fate == "computed"]
        )
        family = manifest["adaptive"]["families"]["fig5_jitter[Hera]"]
        assert family["summary"]["rows_converged"] == family["summary"]["n_rows"]
        # Journaled waves survive the resume as a strict prefix.
        pre_crash = journaled["adaptive"]["families"]["fig5_jitter[Hera]"]
        assert family["waves"][: len(pre_crash["waves"])] == pre_crash["waves"]
        # The resumed output is byte-identical to the uninterrupted run.
        assert _out_snapshot(out) == _out_snapshot(reference)

    def test_policy_change_on_resume_refuses(self, tmp_path, capsys):
        out = tmp_path / "out"
        args = self._args(tmp_path, out)
        assert main(args + ["--fault-plan", "crash-after=40"]) \
            == CRASH_EXIT_CODE
        capsys.readouterr()
        with pytest.raises(SystemExit, match="adaptive journal mismatch"):
            main(args + ["--resume", "--band-tol", "0.2"])

    def test_tampered_journal_refuses(self, tmp_path, capsys):
        out = tmp_path / "out"
        args = self._args(tmp_path, out)
        assert main(args + ["--fault-plan", "crash-after=500"]) \
            == CRASH_EXIT_CODE
        capsys.readouterr()
        path = tmp_path / "runs" / "a1" / "manifest.json"
        manifest = json.loads(path.read_text())
        waves = manifest["adaptive"]["families"]["fig5_jitter[Hera]"]["waves"]
        assert len(waves) > 1, "crash point must land past wave 0"
        waves[-1]["rows"] = [0]  # not the decision the data derives
        path.write_text(json.dumps(manifest))
        # Detected mid-resolve, once the replayed wave folds: the data
        # and the journal no longer describe the same run.
        with pytest.raises(ReproError, match="adaptive journal mismatch"):
            main(args + ["--resume"])


# -- engine-level invariants -------------------------------------------------


class TestAdaptiveEngine:
    def _run(self, policy, **kwargs):
        from repro.experiments.common import SimSettings
        from repro.experiments.pipeline import SimulationPipeline
        from repro.experiments.registry import REGISTRY
        from repro.experiments.scenarios import AdaptiveRun
        from repro.sim.montecarlo import Fidelity

        sset = ScenarioSet("tiny", REGISTRY["fig5"], [Resample(4)], **kwargs)
        settings = SimSettings(fidelity=Fidelity(n_runs=4, n_patterns=6))
        with SimulationPipeline(jobs=1) as pipe:
            run = AdaptiveRun(sset, policy, pipe, settings)
            run.stage_initial()
            pipe.resolve(on_event=run.on_event, on_round=run.on_round)
            run.finalize()
        return run

    def test_max_replicates_caps_the_waves(self):
        # A tolerance nothing satisfies: every row runs to the cap.
        policy = AdaptivePolicy(
            min_replicates=2, max_replicates=4, wave=1, band_tol=1e-12,
            stable_waves=3,
        )
        run = self._run(policy)
        (family,) = run.families
        assert family.waves[-1].stop == 4
        assert family.summary()["rows_staged"] \
            == family.summary()["fixed_rows"]
        assert family.summary()["rows_converged"] == 0

    def test_wave_members_reuse_fixed_path_seeds(self):
        from repro.experiments.scenarios import replicate_seed

        policy = AdaptivePolicy(min_replicates=2, max_replicates=3, wave=1,
                                band_tol=1e9, stable_waves=1)
        run = self._run(policy)
        (family,) = run.families
        members = family.members
        assert members[0].variant.seed is None  # replicate 0: master seed
        assert members[1].variant.seed \
            == replicate_seed(run.sset.master_seed, 1)
        # band_tol=1e9 converges everything at the first delta: wave 1
        # is the last, and every row stopped there.
        assert set(family.converged.values()) == {1}
