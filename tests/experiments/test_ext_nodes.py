"""Node-level failure-law extension experiment."""

from __future__ import annotations

import pytest

from repro.experiments import ext_nodes
from repro.experiments.common import SimSettings
from repro.sim.montecarlo import Fidelity

SETTINGS = SimSettings(fidelity=Fidelity(n_runs=15, n_patterns=40), seed=23)


class TestExtNodes:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_nodes.run(scenarios=(1,), settings=SETTINGS)[0]

    def test_four_rows(self, result):
        labels = result.column("failure model")
        assert len(labels) == 4
        assert labels[0].startswith("aggregated analytic")

    def test_exponential_nodes_match_analytic(self, result):
        analytic = result.column("overhead")[0]
        exp_nodes = result.column("overhead")[1]
        assert exp_nodes == pytest.approx(analytic, rel=0.02)

    def test_stationary_weibull_close_to_analytic(self, result):
        analytic = result.column("overhead")[0]
        weib = result.column("overhead")[2]
        assert weib == pytest.approx(analytic, rel=0.03)

    def test_fresh_machine_worse(self, result):
        stationary = result.column("overhead")[2]
        fresh = result.column("overhead")[3]
        assert fresh > stationary

    def test_no_sim_mode(self):
        res = ext_nodes.run(scenarios=(1,), settings=SimSettings(simulate=False))[0]
        assert res.column("overhead")[1] is None
        assert res.column("overhead")[0] is not None  # analytic always there

    def test_cli_registration(self):
        from repro.experiments.runner import _FIGURES

        assert "ext-nodes" in _FIGURES
