"""Experiment infrastructure: FigureResult and SimSettings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import FigureResult, SimSettings, simulate_mean
from repro.sim.montecarlo import Fidelity


@pytest.fixture
def figure() -> FigureResult:
    return FigureResult(
        figure_id="figX",
        title="Demo",
        columns=("x", "y"),
        rows=((1.0, 2.0), (2.0, None)),
        notes=("a note",),
    )


class TestFigureResult:
    def test_table_contains_title_and_notes(self, figure):
        text = figure.table()
        assert "Demo" in text
        assert "a note" in text

    def test_column_extraction(self, figure):
        assert figure.column("y") == [2.0, None]

    def test_column_array_maps_none_to_nan(self, figure):
        arr = figure.column_array("y")
        assert arr[0] == 2.0
        assert np.isnan(arr[1])

    def test_unknown_column_raises(self, figure):
        with pytest.raises(KeyError):
            figure.column("z")

    def test_to_csv(self, figure, tmp_path):
        path = figure.to_csv(tmp_path)
        assert path.name == "figX.csv"
        assert path.exists()


class TestSimSettings:
    def test_disabled_returns_none(self, hera_sc1):
        settings = SimSettings(simulate=False)
        assert simulate_mean(hera_sc1, 6000.0, 200.0, settings) is None

    def test_enabled_returns_mean(self, hera_sc1):
        settings = SimSettings(fidelity=Fidelity(n_runs=10, n_patterns=10), seed=1)
        value = simulate_mean(hera_sc1, 6000.0, 200.0, settings)
        assert value is not None
        assert 0.09 < value < 0.2

    def test_budget(self):
        settings = SimSettings(fidelity=Fidelity(n_runs=3, n_patterns=7))
        assert settings.budget() == (3, 7)
