"""Scenario lab: transforms, TOML loading, banding, dedup, determinism.

The acceptance contract: a scenario set with a fixed master seed
produces **byte-identical** aggregate band tables across serial,
pooled (``--jobs 2``) and scheduled (``--max-inflight 8``) execution
(pinned against ``goldens/scenario_fig5_bands.txt``), and replicates
sharing a base point are served from the result cache rather than
recomputed (the dedup ratio reported by ``--progress``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.common import SimSettings
from repro.experiments.pipeline import SimulationPipeline
from repro.experiments.registry import REGISTRY
from repro.experiments.runner import main
from repro.experiments.scenarios import (
    BandSpec,
    Jitter,
    PlatformProduct,
    Resample,
    ScenarioSet,
    band_tables,
    derive_variants,
    load_scenario_toml,
    replicate_seed,
)
from repro.experiments.spec import stage_study
from repro.sim.rng import DEFAULT_SEED

GOLDEN = Path(__file__).parent / "goldens" / "scenario_fig5_bands.txt"
EXAMPLE = Path(__file__).parents[2] / "examples" / "scenario_jitter.toml"

#: Reduced budget for the non-golden tests.
FAST_ARGS = ["--runs", "4", "--patterns", "6"]


# -- transform algebra -------------------------------------------------------


class TestTransforms:
    def test_cross_product_order_and_base_first(self):
        variants = derive_variants(
            [Jitter(axis="alpha", width=0.1, count=2), Resample(2)], 123
        )
        # (1 base + 2 draws) x 2 replicates, least-perturbed first.
        assert len(variants) == 6
        assert variants[0].is_base
        assert variants[0].label == "base"
        assert variants[1].replicate == 1 and variants[1].seed is not None

    def test_same_master_seed_same_family(self):
        a = derive_variants([Jitter(axis="downtime", width=0.2, count=3)], 7)
        b = derive_variants([Jitter(axis="downtime", width=0.2, count=3)], 7)
        assert a == b
        c = derive_variants([Jitter(axis="downtime", width=0.2, count=3)], 8)
        assert a != c  # a different master seed draws different jitters

    def test_replicate_zero_keeps_master_seed(self):
        variants = derive_variants([Resample(3)], 99)
        assert [v.replicate for v in variants] == [0, 1, 2]
        assert variants[0].seed is None  # master: dedups with plain runs
        assert variants[1].seed == replicate_seed(99, 1)
        assert variants[1].seed != variants[2].seed

    def test_platform_product_fans_out(self):
        variants = derive_variants(
            [PlatformProduct(("Hera", "Atlas")), Resample(2)], 1
        )
        assert [v.platform for v in variants] == ["Hera", "Hera", "Atlas", "Atlas"]

    def test_jitter_validation(self):
        with pytest.raises(InvalidParameterError, match="unknown jitter axis"):
            Jitter(axis="gravity", width=0.1)
        with pytest.raises(InvalidParameterError, match="malformed distribution"):
            Jitter(axis="alpha", width=0.1, distribution="cauchy")
        with pytest.raises(InvalidParameterError, match="lognormal"):
            Jitter(axis="alpha", width=0.1, mode="additive",
                   distribution="lognormal")
        with pytest.raises(InvalidParameterError, match="width must be positive"):
            Jitter(axis="alpha", width=0.0)
        with pytest.raises(InvalidParameterError, match="count must be >= 1"):
            Jitter(axis="alpha", width=0.1, count=0)
        with pytest.raises(InvalidParameterError, match="replicates must be >= 1"):
            Resample(0)
        with pytest.raises(InvalidParameterError, match="unknown platform"):
            PlatformProduct(("Hera", "Kraken"))


# -- member resolution -------------------------------------------------------


class TestDerivation:
    def test_axis_jitter_scales_the_sweep_grid(self):
        sset = ScenarioSet(
            "s", REGISTRY["fig5"],
            [Jitter(axis="lambda_ind", width=0.5, count=1, include_base=False)],
        )
        (member,) = sset.derive()
        factor = member.variant.perturbations[0].value
        base_grid = REGISTRY["fig5"].axis.default_grid()
        assert member.grid == tuple(x * factor for x in base_grid)
        assert "lambda_ind" not in member.fixed  # the grid carries it

    def test_fixed_axis_jitter_overrides_catalog_values(self):
        sset = ScenarioSet(
            "s", REGISTRY["fig5"],
            [Jitter(axis="checkpoint_cost", width=0.5, count=1,
                    include_base=False)],
        )
        (member,) = sset.derive()
        factor = member.variant.perturbations[0].value
        assert member.fixed["checkpoint_cost"] == pytest.approx(300.0 * factor)
        # fig5's own fixed parameters survive untouched.
        assert member.fixed["alpha"] == 0.1

    def test_declare_hook_studies_are_refused(self):
        with pytest.raises(InvalidParameterError, match="bespoke declare hook"):
            ScenarioSet("s", REGISTRY["ext-weibull"], [Resample(2)])


# -- TOML loader error paths -------------------------------------------------


class TestScenarioTomlErrors:
    def _load(self, tmp_path, text):
        path = tmp_path / "scenario.toml"
        path.write_text(text)
        return load_scenario_toml(path)

    def test_example_file_loads(self):
        sset = load_scenario_toml(EXAMPLE)
        assert sset.name == "fig5_jitter"
        assert len(sset.derive()) == 6
        assert sset.master_seed == DEFAULT_SEED

    def test_seed_override_wins(self):
        sset = load_scenario_toml(EXAMPLE, seed=42)
        assert sset.master_seed == 42

    def test_missing_scenario_table(self, tmp_path):
        with pytest.raises(InvalidParameterError, match=r"missing \[scenario\]"):
            self._load(tmp_path, "[other]\nx = 1\n")

    def test_unknown_study(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="neither a registered"):
            self._load(
                tmp_path,
                '[scenario]\nstudy = "fig99"\nreplicates = 2\n',
            )

    def test_unknown_axis_name(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="unknown jitter axis"):
            self._load(
                tmp_path,
                '[scenario]\nstudy = "fig5"\n'
                '[[transform]]\nkind = "jitter"\naxis = "gravity"\nwidth = 0.1\n',
            )

    def test_malformed_distribution(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="malformed distribution"):
            self._load(
                tmp_path,
                '[scenario]\nstudy = "fig5"\n'
                '[[transform]]\nkind = "jitter"\naxis = "alpha"\n'
                'width = 0.1\ndistribution = "cauchy"\n',
            )

    def test_distribution_mode_mismatch(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="lognormal"):
            self._load(
                tmp_path,
                '[scenario]\nstudy = "fig5"\n'
                '[[transform]]\nkind = "jitter"\naxis = "alpha"\n'
                'width = 0.1\nmode = "additive"\ndistribution = "lognormal"\n',
            )

    def test_conflicting_replicate_counts(self, tmp_path):
        with pytest.raises(InvalidParameterError,
                           match="conflicting replicate counts"):
            self._load(
                tmp_path,
                '[scenario]\nstudy = "fig5"\nreplicates = 3\n'
                '[[transform]]\nkind = "resample"\nreplicates = 5\n',
            )

    def test_unknown_transform_kind(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="unknown kind"):
            self._load(
                tmp_path,
                '[scenario]\nstudy = "fig5"\n[[transform]]\nkind = "mutate"\n',
            )

    def test_unknown_jitter_key_and_missing_width(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="needs a 'width'"):
            self._load(
                tmp_path,
                '[scenario]\nstudy = "fig5"\n'
                '[[transform]]\nkind = "jitter"\naxis = "alpha"\n',
            )
        with pytest.raises(InvalidParameterError, match="unknown keys"):
            self._load(
                tmp_path,
                '[scenario]\nstudy = "fig5"\n'
                '[[transform]]\nkind = "jitter"\naxis = "alpha"\n'
                "width = 0.1\nsigma = 2\n",
            )

    def test_no_transforms(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="no transforms"):
            self._load(tmp_path, '[scenario]\nstudy = "fig5"\n')

    def test_single_transform_table_suggests_array_syntax(self, tmp_path):
        with pytest.raises(InvalidParameterError,
                           match=r"write \[\[transform\]\]"):
            self._load(
                tmp_path,
                '[scenario]\nstudy = "fig5"\n'
                '[transform]\nkind = "jitter"\naxis = "alpha"\nwidth = 0.1\n',
            )

    def test_unknown_platform(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="unknown platform"):
            self._load(
                tmp_path,
                '[scenario]\nstudy = "fig5"\nplatform = "Kraken"\n'
                "replicates = 2\n",
            )

    def test_bad_quantiles(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="quantiles"):
            self._load(
                tmp_path,
                '[scenario]\nstudy = "fig5"\nreplicates = 2\n'
                "[aggregate]\nquantiles = [0.9, 0.1]\n",
            )
        with pytest.raises(InvalidParameterError, match=r"\[lo, hi\] pair"):
            self._load(
                tmp_path,
                '[scenario]\nstudy = "fig5"\nreplicates = 2\n'
                "[aggregate]\nquantiles = 0.5\n",
            )

    def test_non_numeric_counts_and_seed(self, tmp_path):
        """Type errors surface as one-line messages naming the file."""
        with pytest.raises(InvalidParameterError, match="resample"):
            self._load(
                tmp_path,
                '[scenario]\nstudy = "fig5"\n'
                '[[transform]]\nkind = "resample"\nreplicates = "three"\n',
            )
        with pytest.raises(InvalidParameterError, match="seed"):
            self._load(
                tmp_path,
                '[scenario]\nstudy = "fig5"\nseed = "lucky"\nreplicates = 2\n',
            )

    def test_error_messages_carry_the_path(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text('[scenario]\nstudy = "fig5"\n')
        with pytest.raises(InvalidParameterError, match="broken.toml"):
            load_scenario_toml(path)

    def test_transform_chain_order_is_honored(self, tmp_path):
        """resample declared first nests replicates outermost."""
        sset = self._load(
            tmp_path,
            '[scenario]\nstudy = "fig5"\n'
            '[[transform]]\nkind = "resample"\nreplicates = 2\n'
            '[[transform]]\nkind = "jitter"\naxis = "alpha"\nwidth = 0.1\n'
            "count = 1\n",
        )
        members = sset.derive()
        # Replicate-major order: (rep0: base, jitter), (rep1: base, jitter).
        assert [(m.replicate, bool(m.variant.perturbations)) for m in members] \
            == [(0, False), (0, True), (1, False), (1, True)]


# -- band aggregation (synthetic tables) -------------------------------------


def _table(values, columns=("x", "sc1_optimal")):
    from repro.experiments.common import FigureResult

    return FigureResult(
        figure_id="t", title="T", columns=columns,
        rows=tuple((float(i), v) for i, v in enumerate(values)),
    )


class TestBandTables:
    def test_quantiles_and_headers(self):
        members = [[_table([10.0, 1.0])], [_table([20.0, 1.0])],
                   [_table([30.0, 4.0])]]
        (banded,) = band_tables(members, BandSpec(q_lo=0.0, q_hi=1.0),
                                panel_columns=(("H_sim_num",),))
        assert banded.columns == ("x", "sc1_optimal_med", "sc1_optimal_p0",
                                  "sc1_optimal_p100")
        assert banded.rows[0] == (0.0, 20.0, 10.0, 30.0)
        assert banded.rows[1] == (1.0, 1.0, 1.0, 4.0)
        assert banded.figure_id == "t_bands"

    def test_optimum_flip_flags(self):
        members = [[_table([100.0, 50.0])], [_table([100.0, 80.0])]]
        (banded,) = band_tables(members, BandSpec(flip_tolerance=0.05),
                                panel_columns=(("P_num",),))
        assert banded.columns[-1] == "stable"
        assert banded.rows[0][-1] is True   # identical: stable
        assert banded.rows[1][-1] is False  # 50 vs 80: the optimum flipped
        assert "stable at 1/2 grid points" in " ".join(banded.notes)

    def test_validity_flip_is_a_flip(self):
        members = [[_table([None, 2.0])], [_table([3.0, 2.0])]]
        (banded,) = band_tables(members, panel_columns=(("P_fo",),))
        assert banded.rows[0][-1] is False  # first-order validity flipped
        assert banded.rows[0][1] == 3.0     # band over the present values

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError, match="disagree in shape"):
            band_tables([[_table([1.0, 2.0])], [_table([1.0])]])

    def test_non_numeric_cells_rejected(self):
        from repro.experiments.common import FigureResult

        weird = FigureResult(figure_id="t", title="T", columns=("x", "c"),
                             rows=((0.0, "wat"),))
        with pytest.raises(InvalidParameterError, match="non-numeric"):
            band_tables([[weird]])


# -- the acceptance contract: bytes + dedup ----------------------------------


class TestScenarioEquivalence:
    """One golden, three executors, one shared cache."""

    def test_band_tables_byte_identical_across_executors(self, tmp_path, capsys):
        golden = GOLDEN.read_text()
        cache = str(tmp_path / "cache")
        modes = (
            [],                                   # serial, cold cache
            ["--jobs", "2"],                      # pooled, warm cache
            ["--jobs", "2", "--max-inflight", "8"],  # scheduled window
        )
        for extra in modes:
            assert main(
                ["scenario", "report", str(EXAMPLE), "--cache-dir", cache, *extra]
            ) == 0
            out = capsys.readouterr().out
            assert out == golden, f"scenario report diverged with {extra}"

    def test_replicate_zero_hits_the_cache_of_a_plain_run(self, tmp_path, capsys):
        """Warm base grid -> the unperturbed replicate is served, not computed."""
        cache = str(tmp_path / "cache")
        assert main(["sweep", "fig5", *FAST_ARGS, "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(
            ["scenario", "run", str(EXAMPLE), *FAST_ARGS, "--cache-dir", cache,
             "--out", str(tmp_path / "out"), "--progress"]
        ) == 0
        err = capsys.readouterr().err
        # 6 members x 54 points; the base member's 54 are cache-served.
        assert "[scenario] 6 members, 324 points: 54 cache-served" in err
        assert "dedup ratio 16.67%" in err

    def test_run_then_aggregate_matches_report(self, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(
            ["scenario", "run", str(EXAMPLE), *FAST_ARGS, "--out", str(out)]
        ) == 0
        capsys.readouterr()
        assert main(["scenario", "aggregate", str(out)]) == 0
        aggregated = capsys.readouterr().out
        assert main(["scenario", "report", str(EXAMPLE), *FAST_ARGS]) == 0
        report = capsys.readouterr().out
        # report adds the family banner; the band tables must be identical.
        assert aggregated.strip() in report
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["scenario_set"] == "fig5_jitter"
        assert len(list(out.glob("member_*.json"))) == 6

    def test_dry_run_previews_without_executing(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(
            ["scenario", "run", str(EXAMPLE), *FAST_ARGS, "--dry-run",
             "--cache-dir", str(cache), "--out", str(tmp_path / "out")]
        ) == 0
        out = capsys.readouterr().out
        assert "fig5_jitter:Hera:base" in out
        assert "nothing executed" in out
        assert not (tmp_path / "out").exists()
        assert list(cache.glob("*.npz")) == []

    def test_generate_lists_every_member(self, capsys):
        assert main(["scenario", "generate", str(EXAMPLE)]) == 0
        out = capsys.readouterr().out
        assert out.count("fig5_jitter:Hera:") == 6
        assert "master seed 20160913" in out
        assert "rep2" in out

    def test_aggregate_rejects_a_non_result_directory(self, tmp_path):
        with pytest.raises(SystemExit, match="manifest.json"):
            main(["scenario", "aggregate", str(tmp_path)])

    def test_aggregate_rejects_a_corrupt_member_file(self, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(
            ["scenario", "run", str(EXAMPLE), "--runs", "2", "--patterns", "2",
             "--no-sim", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        (out / "member_003.json").write_text("{ truncated")
        with pytest.raises(SystemExit, match="member_003.json"):
            main(["scenario", "aggregate", str(out)])

    def test_aggregate_rejects_unknown_band_keys(self, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(
            ["scenario", "run", str(EXAMPLE), "--runs", "2", "--patterns", "2",
             "--no-sim", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        manifest = json.loads((out / "manifest.json").read_text())
        manifest["band"]["bogus"] = 1
        (out / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SystemExit, match="malformed band parameters"):
            main(["scenario", "aggregate", str(out)])

    def test_run_dry_run_needs_no_out(self, capsys):
        assert main(
            ["scenario", "run", str(EXAMPLE), "--dry-run"]
        ) == 0
        assert "nothing executed" in capsys.readouterr().out
        with pytest.raises(SystemExit, match="requires --out"):
            main(["scenario", "run", str(EXAMPLE)])

    def test_out_of_domain_jitter_fails_with_a_message(self, tmp_path):
        """A draw leaving the model's domain exits cleanly at staging."""
        path = tmp_path / "wild.toml"
        path.write_text(
            '[scenario]\nstudy = "fig5"\n'
            '[[transform]]\nkind = "jitter"\naxis = "lambda_ind"\n'
            'mode = "additive"\ndistribution = "normal"\nwidth = 1.0\n'
            "include_base = false\n"
        )
        with pytest.raises(SystemExit, match="wild.toml"):
            main(["scenario", "report", str(path), "--runs", "2",
                  "--patterns", "2"])


# -- the dry-run accounting fix (cross-study duplicate keys) -----------------


class TestPendingReportAccounting:
    SETTINGS = SimSettings()

    def _stage_twice(self, pipeline):
        stage_study(REGISTRY["fig5"], settings=self.SETTINGS, pipeline=pipeline,
                    group="a")
        stage_study(REGISTRY["fig5"], settings=self.SETTINGS, pipeline=pipeline,
                    group="b")

    def test_cold_duplicates_count_as_deduped(self, tmp_path):
        with SimulationPipeline(jobs=1, cache_dir=tmp_path) as pipe:
            self._stage_twice(pipe)
            report = pipe.pending_report()
        assert report["a"] == {"points": 54, "unique": 54, "deduped": 0,
                               "cache_hits": 0, "to_compute": 54, "jobs": 54,
                               "analytic_evaluated": 27, "analytic_served": 0}
        assert report["b"] == {"points": 54, "unique": 0, "deduped": 54,
                               "cache_hits": 0, "to_compute": 0, "jobs": 0,
                               "analytic_evaluated": 0, "analytic_served": 27}

    def test_warm_duplicates_count_as_cache_served_in_their_own_study(
        self, tmp_path
    ):
        """A dup of a cache-served key is a hit for *its* study — and the
        first study does not absorb (double-report) the second's hits."""
        with SimulationPipeline(jobs=1, cache_dir=tmp_path) as pipe:
            stage_study(REGISTRY["fig5"], settings=self.SETTINGS, pipeline=pipe)
            pipe.resolve()
        with SimulationPipeline(jobs=1, cache_dir=tmp_path) as pipe:
            self._stage_twice(pipe)
            report = pipe.pending_report()
            # Pure preview: the disk cache accounting is untouched.
            assert pipe.cache_stats == (0, 0)
        assert report["a"]["cache_hits"] == 54 and report["a"]["deduped"] == 0
        assert report["b"]["cache_hits"] == 54 and report["b"]["deduped"] == 0
        assert report["b"]["unique"] == 0
        # Declaration-level accounting matches what resolve will serve.
        with SimulationPipeline(jobs=1, cache_dir=tmp_path) as pipe:
            self._stage_twice(pipe)
            served = []
            pipe.resolve(on_event=lambda e: served.append(e.status))
            assert served.count("served") == 108
            assert pipe.cache_stats[0] == 54  # disk reads stay deduplicated

    def test_memo_hits_report_as_cache_served(self):
        with SimulationPipeline(jobs=1) as pipe:
            stage_study(REGISTRY["fig2"], settings=self.SETTINGS, pipeline=pipe)
            pipe.resolve()
            stage_study(REGISTRY["fig2"], settings=self.SETTINGS, pipeline=pipe,
                        group="again")
            report = pipe.pending_report()
        assert report["again"]["cache_hits"] == report["again"]["points"]
        assert report["again"]["to_compute"] == 0
