"""Weak-vs-strong scaling extension experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ext_weakscaling
from repro.experiments.common import SimSettings

NO_SIM = SimSettings(simulate=False)


class TestWeakScaling:
    @pytest.fixture(scope="class")
    def results(self):
        return ext_weakscaling.run(
            machines=2.0 ** np.arange(7, 15), settings=NO_SIM
        )

    def test_one_result_per_scenario(self, results):
        assert len(results) == 2
        assert "sc1" in results[0].figure_id
        assert "sc3" in results[1].figure_id

    def test_strong_scaling_u_shape(self, results):
        H = results[0].column_array("strong_overhead")
        i = int(np.argmin(H))
        assert 0 < i < H.size - 1

    def test_weak_inflation_monotone_increasing(self, results):
        for res in results:
            infl = res.column_array("weak_inflation")
            assert np.all(np.diff(infl) > 0)

    def test_inflation_at_least_one(self, results):
        for res in results:
            assert np.all(res.column_array("weak_inflation") >= 1.0)

    def test_linear_costs_inflate_much_faster(self, results):
        # Scenario 1 (C_P = cP) hits catastrophic inflation where
        # scenario 3 (constant C) is still moderate.
        infl1 = results[0].column_array("weak_inflation")
        infl3 = results[1].column_array("weak_inflation")
        assert infl1[-1] > 5 * infl3[-1]

    def test_ceiling_reported(self, results):
        notes = " ".join(results[0].notes)
        assert "ceiling" in notes

    def test_budget_column_consistent(self, results):
        res = results[1]
        infl = res.column_array("weak_inflation")
        within = res.column("within_110%_budget")
        for value, flag in zip(infl, within):
            assert flag == (value <= 1.10)

    def test_custom_budget(self):
        res = ext_weakscaling.run(
            scenarios=(3,),
            machines=2.0 ** np.arange(7, 12),
            inflation_budget=1.5,
            settings=NO_SIM,
        )[0]
        assert "within_150%_budget" in res.columns
