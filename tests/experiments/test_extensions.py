"""Extension experiment modules (segments sweep, Weibull robustness)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ext_segments, ext_weibull
from repro.experiments.common import SimSettings
from repro.sim.montecarlo import Fidelity

SETTINGS = SimSettings(fidelity=Fidelity(n_runs=15, n_patterns=30), seed=11)
NO_SIM = SimSettings(simulate=False)


class TestSegmentsExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_segments.run(settings=NO_SIM)[0]

    def test_all_platforms_covered(self, result):
        assert result.column("platform") == ["Hera", "Atlas", "Coastal", "CoastalSSD"]

    def test_numerical_best_never_worse_than_k1(self, result):
        h1 = result.column_array("H(k=1)")
        gains = [float(g.rstrip("%")) for g in result.column("gain_vs_k1")]
        assert np.all(np.asarray(gains) >= 0.0)
        assert h1.shape == (4,)

    def test_first_order_kstar_tracks_best(self, result):
        k_star = result.column_array("k*_first_order")
        k_best = result.column_array("k_best")
        assert np.all(np.abs(k_star - k_best) <= 1.5)

    def test_silent_heavy_platform_gains_most(self, result):
        gains = {
            p: float(g.rstrip("%"))
            for p, g in zip(result.column("platform"), result.column("gain_vs_k1"))
        }
        assert gains["Atlas"] == max(gains.values())  # 94% silent errors

    def test_single_platform_mode(self):
        res = ext_segments.run(platform="Hera", all_platforms=False, settings=NO_SIM)[0]
        assert res.column("platform") == ["Hera"]


class TestWeibullExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_weibull.run(scenarios=(1,), settings=SETTINGS)[0]

    def test_shape_one_matches_analytic(self, result):
        analytic = result.column_array("H_analytic")[0]
        sim = result.column_array("H_sim(shape=1)")[0]
        assert sim == pytest.approx(analytic, rel=0.02)

    def test_all_shapes_within_robustness_band(self, result):
        analytic = result.column_array("H_analytic")[0]
        for shape in (0.5, 0.7, 1.0, 1.5):
            sim = result.column_array(f"H_sim(shape={shape:g})")[0]
            assert abs(sim - analytic) / analytic < 0.08

    def test_no_sim_mode(self):
        res = ext_weibull.run(scenarios=(1,), settings=NO_SIM)[0]
        assert res.column("H_sim(shape=1)") == [None]

    def test_cli_registration(self):
        from repro.experiments.runner import _FIGURES

        assert "ext-segments" in _FIGURES
        assert "ext-weibull" in _FIGURES
