"""CLI runner."""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_parser, main, print_input_tables


class TestParser:
    def test_tables_command(self):
        args = build_parser().parse_args(["tables"])
        assert args.command == "tables"

    def test_fig_command_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.platform == "Hera"
        assert not args.no_sim
        assert not args.paper

    def test_fidelity_overrides(self):
        args = build_parser().parse_args(["fig5", "--runs", "7", "--patterns", "9"])
        assert args.runs == 7 and args.patterns == 9

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_platform(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--platform", "Summit"])


class TestExecution:
    def test_tables_output(self, capsys):
        print_input_tables()
        out = capsys.readouterr().out
        assert "Hera" in out and "CoastalSSD" in out
        assert "Table II" in out and "Table III" in out

    def test_main_tables(self, capsys):
        assert main(["tables"]) == 0
        assert "Hera" in capsys.readouterr().out

    def test_main_fig2_no_sim(self, capsys):
        assert main(["fig2", "--no-sim"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "scenario" in out

    def test_main_with_csv(self, capsys, tmp_path):
        assert main(["fig2", "--no-sim", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig2_hera.csv").exists()

    def test_main_fig3_small(self, capsys):
        assert main(["fig3", "--no-sim"]) == 0
        assert "Figure 3(c)" in capsys.readouterr().out
