"""CLI runner."""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_parser, main, print_input_tables


class TestParser:
    def test_tables_command(self):
        args = build_parser().parse_args(["tables"])
        assert args.command == "tables"

    def test_fig_command_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.platform == "Hera"
        assert not args.no_sim
        assert not args.paper

    def test_fidelity_overrides(self):
        args = build_parser().parse_args(["fig5", "--runs", "7", "--patterns", "9"])
        assert args.runs == 7 and args.patterns == 9

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_platform(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--platform", "Summit"])


class TestExecution:
    def test_tables_output(self, capsys):
        print_input_tables()
        out = capsys.readouterr().out
        assert "Hera" in out and "CoastalSSD" in out
        assert "Table II" in out and "Table III" in out

    def test_main_tables(self, capsys):
        assert main(["tables"]) == 0
        assert "Hera" in capsys.readouterr().out

    def test_main_fig2_no_sim(self, capsys):
        assert main(["fig2", "--no-sim"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "scenario" in out

    def test_main_with_csv(self, capsys, tmp_path):
        assert main(["fig2", "--no-sim", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig2_hera.csv").exists()

    def test_main_fig3_small(self, capsys):
        assert main(["fig3", "--no-sim"]) == 0
        assert "Figure 3(c)" in capsys.readouterr().out


class TestPipelineFlags:
    def test_jobs_defaults_to_workers(self):
        from repro.experiments.runner import _pipeline_from_args

        args = build_parser().parse_args(["fig2", "--workers", "3"])
        with _pipeline_from_args(args) as pipe:
            assert pipe.pool.workers == 3

    def test_flagless_default_is_serial(self):
        from repro.experiments.runner import _pipeline_from_args

        args = build_parser().parse_args(["fig2"])
        with _pipeline_from_args(args) as pipe:
            assert pipe.pool.workers == 1
            assert pipe.cache is None

    def test_jobs_overrides_workers(self):
        from repro.experiments.runner import _pipeline_from_args

        args = build_parser().parse_args(["fig2", "--workers", "3", "--jobs", "2"])
        with _pipeline_from_args(args) as pipe:
            assert pipe.pool.workers == 2

    def test_no_cache_bypasses_cache_dir(self, tmp_path):
        from repro.experiments.runner import _pipeline_from_args

        args = build_parser().parse_args(
            ["fig2", "--cache-dir", str(tmp_path), "--no-cache"]
        )
        with _pipeline_from_args(args) as pipe:
            assert pipe.cache is None

    def test_cache_dir_enables_cache(self, tmp_path):
        from repro.experiments.runner import _pipeline_from_args

        args = build_parser().parse_args(["fig2", "--cache-dir", str(tmp_path)])
        with _pipeline_from_args(args) as pipe:
            assert pipe.cache is not None
            assert pipe.cache.directory == tmp_path

    def test_cli_cache_roundtrip(self, capsys, tmp_path):
        import re

        def cache_line(out: str) -> tuple[int, int]:
            match = re.search(r"\[cache\] (\d+) hits, (\d+) misses", out)
            assert match, out
            return int(match.group(1)), int(match.group(2))

        assert main(["fig2", "--runs", "3", "--patterns", "4",
                     "--cache-dir", str(tmp_path)]) == 0
        hits, misses = cache_line(capsys.readouterr().out)
        assert hits == 0 and misses > 0
        assert main(["fig2", "--runs", "3", "--patterns", "4",
                     "--cache-dir", str(tmp_path)]) == 0
        hits, misses = cache_line(capsys.readouterr().out)
        assert misses == 0 and hits > 0
