"""CLI smoke: every subcommand parses --help, every figure completes.

The figure commands run at the smallest useful fidelity (or with
``--no-sim`` for the sweep-heavy ones) so the whole module stays fast
while still driving each pipeline end to end through the real CLI.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import _FIGURES, build_parser, main

ALL_COMMANDS = list(_FIGURES) + ["tables", "all", "report", "index"]


class TestHelp:
    @pytest.mark.parametrize("command", ALL_COMMANDS)
    def test_subcommand_help_parses(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([command, "--help"])
        assert excinfo.value.code == 0
        assert command in capsys.readouterr().out

    def test_top_level_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--help"])
        assert excinfo.value.code == 0

    def test_method_flag_choices(self):
        args = build_parser().parse_args(["fig5", "--method", "vectorized"])
        assert args.method == "vectorized"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--method", "quantum"])


class TestFigureCommandsComplete:
    @pytest.mark.parametrize("command", sorted(_FIGURES))
    def test_no_sim_run_exits_zero(self, command, capsys):
        assert main([command, "--no-sim"]) == 0
        out = capsys.readouterr().out
        assert "[done in" in out

    def test_fig2_tiny_simulated_budget(self, capsys):
        assert main(["fig2", "--runs", "3", "--patterns", "4"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_fig2_explicit_vectorized_method(self, capsys):
        assert (
            main(
                [
                    "fig2",
                    "--runs",
                    "3",
                    "--patterns",
                    "4",
                    "--method",
                    "vectorized",
                ]
            )
            == 0
        )
        assert "Figure 2" in capsys.readouterr().out


class TestIndexCommand:
    def test_index_lists_every_command(self, capsys):
        assert main(["index"]) == 0
        out = capsys.readouterr().out
        for name in _FIGURES:
            assert f"python -m repro {name}" in out

    def test_index_check_passes_on_repo_doc(self, capsys):
        from pathlib import Path

        doc = Path(__file__).resolve().parents[2] / "EXPERIMENTS.md"
        assert main(["index", "--check", "--file", str(doc)]) == 0

    def test_index_check_fails_on_missing_file(self, tmp_path, capsys):
        assert main(["index", "--check", "--file", str(tmp_path / "nope.md")]) == 1

    def test_index_check_fails_on_drifted_doc(self, tmp_path, capsys):
        stale = tmp_path / "EXPERIMENTS.md"
        stale.write_text("only `python -m repro fig2` is described here\n")
        assert main(["index", "--check", "--file", str(stale)]) == 1
        out = capsys.readouterr().out
        assert "does not reference" in out

    def test_index_check_flags_unknown_command(self, tmp_path, capsys):
        doc = tmp_path / "EXPERIMENTS.md"
        lines = [f"python -m repro {name}" for name in _FIGURES]
        lines.append("python -m repro fig99")
        doc.write_text("\n".join(lines) + "\n")
        assert main(["index", "--check", "--file", str(doc)]) == 1
        assert "fig99" in capsys.readouterr().out
