"""End-to-end run telemetry: tracing, metrics, and the `trace` CLI.

The acceptance contract of the observability layer: table bytes are
identical with ``--trace`` on or off; a traced run's journal schema-
validates and its per-study tallies match the manifest's metrics
snapshot and fates exactly; the comparable event multiset is invariant
across serial, pooled and sharded executors; and the ``trace``
subcommand summarizes, timelines and exports the journal.  Everything
drives the real CLI (``main``), like the resume suite.
"""

from __future__ import annotations

import json
from collections import Counter

import pytest

from repro.experiments.runner import main
from repro.obs.stream import LineStream
from repro.obs.trace import ENVIRONMENT_EVENTS, comparable_events, load_trace

#: Small but parallel-friendly budget: several chunk jobs per study.
FAST_ARGS = ["--runs", "3", "--patterns", "4"]


def _strip_volatile(text: str) -> str:
    return "\n".join(
        line
        for line in text.splitlines()
        if not line.startswith(("[done in", "[cache]"))
    )


def _multiset(events, drop=ENVIRONMENT_EVENTS):
    return sorted(
        json.dumps(e, sort_keys=True) for e in comparable_events(events, drop=drop)
    )


def _traced_run(tmp_path, capsys, extra=(), run_id="r1"):
    """One journaled, traced fig5 run; returns (stdout, events, manifest)."""
    args = [
        "fig5", *FAST_ARGS,
        "--cache-dir", str(tmp_path / "cache"),
        "--runs-dir", str(tmp_path / "runs"),
        "--run-id", run_id,
        "--trace",
        *extra,
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    events = load_trace(tmp_path / "runs" / run_id / "trace.jsonl")
    manifest = json.loads(
        (tmp_path / "runs" / run_id / "manifest.json").read_text()
    )
    return out, events, manifest


class TestByteIdentity:
    def test_traced_stdout_identical_to_untraced(self, tmp_path, capsys):
        assert main(["fig5", *FAST_ARGS]) == 0
        golden = _strip_volatile(capsys.readouterr().out)
        traced, _, _ = _traced_run(tmp_path, capsys)
        assert _strip_volatile(traced) == golden

    def test_trace_file_flag_implies_tracing(self, tmp_path, capsys):
        path = tmp_path / "custom.jsonl"
        assert main(["fig5", *FAST_ARGS, "--trace-file", str(path)]) == 0
        capsys.readouterr()
        events = load_trace(path)
        assert events[0]["ev"] == "trace_start"
        assert events[-1]["ev"] == "trace_end"


class TestJournalContract:
    def test_schema_valid_and_counts_match_manifest(self, tmp_path, capsys):
        _, events, manifest = _traced_run(tmp_path, capsys)
        # load_trace already schema-validated every event.  The point
        # events must reproduce the manifest's journaled fates exactly.
        fate_by_key = {}
        for event in events:
            if event["ev"] == "point" and event["key"] is not None:
                fate_by_key[event["key"]] = event["status"]
        assert fate_by_key == manifest["fates"]
        # ... and the metrics snapshot's per-study counters must match
        # the per-event tallies.
        tallies: Counter = Counter()
        for event in events:
            if event["ev"] == "point":
                tallies[event["status"]] += 1
        for row in manifest["metrics"]["metrics"]:
            if row["name"] == "points":
                assert row["value"] == tallies[row["labels"]["status"]]

    def test_snapshot_rides_trace_and_manifest_alike(self, tmp_path, capsys):
        _, events, manifest = _traced_run(tmp_path, capsys)
        snapshots = [e for e in events if e["ev"] == "snapshot"]
        assert len(snapshots) == 1
        trace_points = [
            row for row in snapshots[0]["metrics"]["metrics"]
            if row["name"] == "points"
        ]
        manifest_points = [
            row for row in manifest["metrics"]["metrics"]
            if row["name"] == "points"
        ]
        assert trace_points == manifest_points

    def test_execution_flags_keep_resume_valid(self, tmp_path, capsys):
        # --trace is execution-only: a resume of an untraced run with
        # tracing on must validate (config hash ignores it) and reuse
        # every point.
        args = [
            "fig5", *FAST_ARGS,
            "--cache-dir", str(tmp_path / "cache"),
            "--runs-dir", str(tmp_path / "runs"),
            "--run-id", "r1",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume", "--trace"]) == 0
        err = capsys.readouterr().err
        manifest = json.loads(
            (tmp_path / "runs" / "r1" / "manifest.json").read_text()
        )
        assert manifest["recomputed"] == 0
        assert manifest["reused"] == len(manifest["fates"])
        assert "[resume] round delivered:" in err


class TestDeterminism:
    def _trace_of(self, tmp_path, capsys, tag, extra):
        path = tmp_path / f"{tag}.jsonl"
        assert main([
            "fig5", *FAST_ARGS, "--trace-file", str(path), *extra,
        ]) == 0
        capsys.readouterr()
        return load_trace(path)

    def test_serial_vs_pooled_event_multiset(self, tmp_path, capsys):
        serial = self._trace_of(
            tmp_path, capsys, "serial",
            ["--cache-dir", str(tmp_path / "c1")],
        )
        pooled = self._trace_of(
            tmp_path, capsys, "pooled",
            ["--cache-dir", str(tmp_path / "c2"), "--jobs", "2"],
        )
        assert _multiset(serial) == _multiset(pooled)

    def test_serial_vs_sharded_event_multiset(self, tmp_path, capsys):
        serial = self._trace_of(
            tmp_path, capsys, "serial",
            ["--cache-dir", str(tmp_path / "c1")],
        )
        sharded = self._trace_of(
            tmp_path, capsys, "sharded",
            ["--shard-count", "1", "--shard-dir", str(tmp_path / "s0")],
        )
        # Sharded runs have no emitter, so emit events are environment.
        drop = ENVIRONMENT_EVENTS | {"emit"}
        assert _multiset(serial, drop) == _multiset(sharded, drop)


class TestTraceCli:
    @pytest.fixture
    def run(self, tmp_path, capsys):
        _traced_run(tmp_path, capsys, extra=["--jobs", "2"])
        return tmp_path

    def test_summary_text(self, run, capsys):
        assert main(["trace", "summary", "r1",
                     "--runs-dir", str(run / "runs")]) == 0
        out = capsys.readouterr().out
        for section in ("[trace]", "[phases]", "[scheduler]", "[studies]",
                        "[fates]", "[cache]"):
            assert section in out
        assert "occupancy" in out

    def test_summary_json_matches_manifest_fates(self, run, capsys):
        assert main(["trace", "summary", "r1",
                     "--runs-dir", str(run / "runs"), "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        manifest = json.loads((run / "runs" / "r1" / "manifest.json").read_text())
        assert summary["fates"] == dict(
            Counter(manifest["fates"].values()),
            **{s: 0 for s in ("computed", "served", "skipped")
               if s not in set(manifest["fates"].values())},
        )

    def test_target_resolution_file_dir_and_id(self, run, capsys):
        trace_file = run / "runs" / "r1" / "trace.jsonl"
        for target, extra in (
            (str(trace_file), []),
            (str(trace_file.parent), []),
            ("r1", ["--runs-dir", str(run / "runs")]),
        ):
            assert main(["trace", "summary", target, *extra]) == 0
            capsys.readouterr()

    def test_unknown_target_fails_with_hint(self, tmp_path):
        with pytest.raises(SystemExit, match="no trace found"):
            main(["trace", "summary", "nope",
                  "--runs-dir", str(tmp_path / "runs")])

    def test_timeline_limit(self, run, capsys):
        assert main(["trace", "timeline", "r1",
                     "--runs-dir", str(run / "runs"), "--limit", "5"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 6
        assert lines[-1].startswith("... ")
        assert "trace_start" in lines[0]

    def test_export_round_trips(self, run, capsys):
        trace_file = run / "runs" / "r1" / "trace.jsonl"
        original = load_trace(trace_file)
        assert main(["trace", "export", str(trace_file)]) == 0
        jsonl = capsys.readouterr().out
        assert [json.loads(l) for l in jsonl.splitlines()] == original
        assert main(["trace", "export", str(trace_file),
                     "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == original


class TestCacheStatsJson:
    def test_json_format_uses_metrics_schema(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["fig5", *FAST_ARGS, "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-metrics/1"
        assert payload["directory"] == str(cache_dir)
        by_name = {row["name"]: row["value"] for row in payload["metrics"]
                   if not row["labels"]}
        assert by_name["cache_entries"] > 0
        assert by_name["cache_bytes"] > 0

    def test_text_format_unchanged_by_default(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["fig5", *FAST_ARGS, "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("[cache] ")
        assert "[analytic]" in out


class TestProgressStream:
    def test_line_is_single_write(self):
        writes = []

        class Probe:
            def write(self, text):
                writes.append(text)

            def flush(self):
                pass

        LineStream(Probe()).line("[progress] fig5 1/54")
        assert writes == ["[progress] fig5 1/54\n"]

    def test_progress_reads_registry(self, tmp_path, capsys):
        assert main(["fig5", *FAST_ARGS, "--progress"]) == 0
        err = capsys.readouterr().err
        lines = [l for l in err.splitlines() if l.startswith("[progress]")]
        assert lines, err
        # The final line's tallies cover every delivered point.
        assert lines[-1].startswith("[progress] fig5 54/54 computed=")
