"""Study registry: completeness, CLI derivation, TOML loading."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.common import SimSettings
from repro.experiments.registry import REGISTRY, RUNNERS, find_spec, get_spec
from repro.experiments.runner import build_parser, check_experiments_md, main
from repro.experiments.spec import (
    SWEEP_COLUMNS,
    StudySpec,
    load_toml_spec,
    run_study,
)

EXAMPLE_TOML = Path(__file__).resolve().parents[2] / "examples" / "custom_study.toml"


class TestRegistry:
    def test_ten_studies_registered(self):
        assert len(REGISTRY) == 10
        assert set(REGISTRY) == {
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "ext-segments", "ext-weibull", "ext-weakscaling", "ext-nodes",
        }

    def test_registry_order_is_presentation_order(self):
        assert list(REGISTRY)[:6] == ["fig2", "fig3", "fig4", "fig5", "fig6", "fig7"]

    def test_descriptions_unique_and_nonempty(self):
        descriptions = [spec.description for spec in REGISTRY.values()]
        assert all(descriptions)
        assert len(set(descriptions)) == len(descriptions)

    def test_every_entry_is_a_spec_with_runner(self):
        for name, spec in REGISTRY.items():
            assert isinstance(spec, StudySpec)
            assert spec.name == name
            assert callable(RUNNERS[name])

    def test_get_spec_unknown_raises(self):
        with pytest.raises(InvalidParameterError):
            get_spec("fig99")

    def test_find_spec_resolves_names_and_files(self):
        assert find_spec("fig5") is REGISTRY["fig5"]
        assert find_spec(str(EXAMPLE_TOML)).name == "lowalpha_rates"
        with pytest.raises(InvalidParameterError):
            find_spec("no-such-study")


class TestHelpDerivation:
    def test_cli_help_comes_from_registry(self, capsys):
        """The single source of figure help text is the StudySpec."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        for spec in REGISTRY.values():
            assert spec.description[:40] in out

    def test_index_lists_registry_descriptions(self, capsys):
        assert main(["index"]) == 0
        out = capsys.readouterr().out
        for name, spec in REGISTRY.items():
            assert f"python -m repro {name}" in out
            assert spec.description in out

    def test_drift_guard_requires_new_meta_commands(self, tmp_path, capsys):
        """A document missing sweep/merge/cache fails `index --check`."""
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text(
            "\n".join(
                f"python -m repro {name}"
                for name in list(REGISTRY) + ["all", "tables"]
            )
        )
        assert check_experiments_md(doc) == 1
        out = capsys.readouterr().out
        assert "sweep" in out and "merge" in out and "cache" in out


class TestTomlSpecs:
    def test_example_loads(self):
        spec = load_toml_spec(EXAMPLE_TOML)
        assert spec.name == "lowalpha_rates"
        assert spec.platforms == ("Hera", "Atlas")
        assert spec.scenarios == (1, 3)
        assert spec.axis.model_kwarg == "lambda_ind"
        assert len(spec.panels) == 2
        assert spec.fixed["alpha"] == 0.01

    def test_example_runs_no_sim(self):
        spec = load_toml_spec(EXAMPLE_TOML)
        results = run_study(spec, settings=SimSettings(simulate=False))
        assert len(results) == 2
        table = results[0].table()
        assert "sc1_first_order" in table and "sc3_optimal" in table
        assert any("fitted P_num slope" in n for n in results[0].notes)

    def test_sweep_spec_cli(self, capsys):
        assert main(
            ["sweep", "--spec", str(EXAMPLE_TOML), "--no-sim", "--platform", "Hera"]
        ) == 0
        out = capsys.readouterr().out
        assert "Custom [Hera]" in out
        assert "Custom [Atlas]" not in out  # --platform restricts the grid

    def test_sweep_spec_runs_all_spec_platforms_by_default(self, capsys):
        assert main(["sweep", "--spec", str(EXAMPLE_TOML), "--no-sim"]) == 0
        out = capsys.readouterr().out
        assert "Custom [Hera]" in out and "Custom [Atlas]" in out

    def test_sweep_registry_name(self, capsys):
        assert main(["sweep", "fig2", "--no-sim"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_sweep_needs_exactly_one_source(self):
        with pytest.raises(SystemExit):
            main(["sweep"])
        with pytest.raises(SystemExit):
            main(["sweep", "fig2", "--spec", str(EXAMPLE_TOML)])

    def test_sweep_unknown_study_is_a_clean_cli_error(self):
        """A typo'd name exits with a message, not a traceback."""
        with pytest.raises(SystemExit, match="neither a registered study"):
            main(["sweep", "nosuchstudy"])
        with pytest.raises(SystemExit, match="cannot load study spec"):
            main(["sweep", "--spec", "missing_file.toml"])

    def test_sweep_ext_segments_emits_once(self, capsys):
        """The study's own platform loop must not be re-fanned by sweep."""
        assert main(["sweep", "ext-segments", "--no-sim"]) == 0
        out = capsys.readouterr().out
        assert out.count("Extension: overhead vs verified segments") == 1

    def test_report_refuses_shard_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="report cannot run sharded"):
            main(
                ["report", "--shard-index", "0", "--shard-count", "2",
                 "--shard-dir", str(tmp_path / "s0"),
                 "--out", str(tmp_path / "r.md")]
            )

    def test_arbitrary_column_sets_get_explicit_headers(self, tmp_path):
        """Non-fo/num pairs and 3+ columns must label, not crash."""
        path = tmp_path / "wide.toml"
        path.write_text(
            "[study]\nname='wide'\nscenarios=[1]\nplatforms=['Hera']\n"
            "[axis]\nname='alpha'\nvalues=[0.1, 0.01]\n"
            "[[panel]]\ncolumns=['P_num', 'T_num', 'H_pred_num']\n"
            "[[panel]]\ncolumns=['P_num', 'T_num']\n"
        )
        results = run_study(
            load_toml_spec(path), settings=SimSettings(simulate=False)
        )
        assert results[0].columns == (
            "alpha", "sc1_P_num", "sc1_T_num", "sc1_H_pred_num"
        )
        assert results[1].columns == ("alpha", "sc1_P_num", "sc1_T_num")
        results[0].table()  # renders without a ragged-row error

    @pytest.mark.parametrize(
        "payload, message",
        [
            ("[study]\nname='x'\n", "missing \\[axis\\]"),
            ("[axis]\nname='weird'\nvalues=[1.0]\n", "axis.name"),
            ("[axis]\nname='alpha'\n", "axis.values"),
            (
                "[axis]\nname='alpha'\nvalues=[0.1]\n",
                "at least one \\[\\[panel\\]\\]",
            ),
            (
                "[axis]\nname='alpha'\nvalues=[0.1]\n[[panel]]\ncolumns=['bogus']\n",
                "unknown column",
            ),
            (
                "[study]\nplatforms=['Tianhe']\n"
                "[axis]\nname='alpha'\nvalues=[0.1]\n"
                "[[panel]]\ncolumns=['P_num']\n",
                "unknown platform",
            ),
            (
                "[study]\nscenarios=[9]\n"
                "[axis]\nname='alpha'\nvalues=[0.1]\n"
                "[[panel]]\ncolumns=['P_num']\n",
                "unknown scenario",
            ),
        ],
    )
    def test_validation_errors(self, tmp_path, payload, message):
        path = tmp_path / "bad.toml"
        path.write_text(payload)
        with pytest.raises(InvalidParameterError, match=message):
            load_toml_spec(path)

    def test_vocabulary_is_stable(self):
        # The documented column vocabulary the TOML format accepts.
        assert SWEEP_COLUMNS == (
            "P_fo", "P_num", "T_fo", "T_num",
            "H_pred_fo", "H_pred_num", "H_sim_fo", "H_sim_num",
        )

    def test_axis_sweeps_simulated_column(self, tmp_path):
        """A TOML study with sim columns rides the pipeline end to end."""
        path = tmp_path / "mini.toml"
        path.write_text(
            "[study]\nname='mini'\nscenarios=[1]\nplatforms=['Hera']\n"
            "[axis]\nname='lambda_ind'\nvalues=[1e-9, 1e-8]\n"
            "[[panel]]\ncolumns=['H_sim_num']\n"
        )
        from repro.sim.montecarlo import Fidelity

        spec = load_toml_spec(path)
        settings = SimSettings(fidelity=Fidelity(n_runs=3, n_patterns=4), seed=5)
        results = run_study(spec, settings=settings)
        values = results[0].column("scenario_1")
        assert len(values) == 2
        assert all(isinstance(v, float) and v > 0 for v in values)
