"""Smoke + shape tests for every figure generator (reduced fidelity).

These are the executable versions of the EXPERIMENTS.md shape checks:
each figure must not only run, but exhibit the qualitative behaviour the
paper reports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    fig2_scenarios,
    fig3_processors,
    fig4_alpha,
    fig5_error_rate,
    fig6_alpha_zero,
    fig7_downtime,
)
from repro.experiments.common import SimSettings
from repro.sim.montecarlo import Fidelity

#: Cheap but statistically meaningful Monte-Carlo budget for CI.
SETTINGS = SimSettings(fidelity=Fidelity(n_runs=20, n_patterns=40), seed=7)
NO_SIM = SimSettings(simulate=False)


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_scenarios.run(settings=SETTINGS)[0]

    def test_one_row_per_scenario(self, result):
        assert result.column("scenario") == [1, 2, 3, 4, 5, 6]

    def test_scenario6_has_no_first_order(self, result):
        assert result.column("P*_first_order")[5] is None
        assert result.column("P*_optimal")[5] is not None

    def test_first_order_close_to_optimal_scenarios_1_to_4(self, result):
        H_fo = result.column_array("H_first_order_pred")[:4]
        H_opt = result.column_array("H_optimal_pred")[:4]
        assert np.all(np.abs(H_fo - H_opt) < 0.01 * 0.5)

    def test_overheads_near_011(self, result):
        # Paper: ~0.11 on all platforms at alpha = 0.1.
        H_sim = result.column_array("H_optimal_sim")
        assert np.all((H_sim > 0.10) & (H_sim < 0.13))

    def test_simulation_validates_prediction(self, result):
        H_pred = result.column_array("H_optimal_pred")
        H_sim = result.column_array("H_optimal_sim")
        assert np.all(np.abs(H_pred - H_sim) / H_pred < 0.05)

    def test_scenario5_first_order_deviates(self, result):
        # Paper: scenario 5's first-order solution is visibly off.
        H_fo_sim = result.column_array("H_first_order_sim")[4]
        H_opt_sim = result.column_array("H_optimal_sim")[4]
        assert H_fo_sim > H_opt_sim

    def test_other_platform(self):
        res = fig2_scenarios.run(platform="Atlas", scenarios=(1, 3), settings=NO_SIM)[0]
        assert len(res.rows) == 2


class TestFig3:
    @pytest.fixture(scope="class")
    def results(self):
        return fig3_processors.run(
            processors=np.array([256.0, 512.0, 1024.0]), settings=SETTINGS
        )

    def test_three_panels(self, results):
        assert len(results) == 3
        ids = [r.figure_id for r in results]
        assert any("period" in i for i in ids)
        assert any("gap" in i for i in ids)

    def test_period_decreases_for_constant_cost_scenarios(self, results):
        panel = results[0]
        T3 = panel.column_array("scenario_3")
        assert np.all(np.diff(T3) < 0)

    def test_gap_below_paper_bound(self, results):
        gaps = results[2]
        for sc in (1, 2, 3, 4, 5, 6):
            assert np.all(gaps.column_array(f"scenario_{sc}") < 0.2)

    def test_same_cp_scenarios_overlap(self, results):
        # Scenarios 3 and 4 share C_P = a: nearly identical periods.
        panel = results[0]
        T3 = panel.column_array("scenario_3")
        T4 = panel.column_array("scenario_4")
        np.testing.assert_allclose(T3, T4, rtol=0.1)

    def test_overhead_u_shape_wide_grid(self):
        # On a wide grid the simulated overhead dips then rises (sc 1).
        res = fig3_processors.run(
            scenarios=(1,),
            processors=np.array([64.0, 256.0, 2048.0]),
            settings=SETTINGS,
        )
        H = res[1].column_array("scenario_1")
        assert H[1] < H[0]
        assert H[1] < H[2]


class TestFig4:
    @pytest.fixture(scope="class")
    def results(self):
        return fig4_alpha.run(alphas=(0.1, 0.001, 0.0), settings=SETTINGS)

    def test_p_star_grows_as_alpha_drops(self, results):
        P = results[0]
        for col in ("sc1_optimal", "sc3_optimal", "sc5_optimal"):
            values = P.column_array(col)
            assert values[0] < values[1] < values[2]

    def test_alpha_zero_has_no_first_order(self, results):
        P = results[0]
        assert P.column("sc1_first_order")[-1] is None

    def test_overhead_tracks_alpha_floor(self, results):
        H = results[2]
        h1 = H.column_array("sc1_optimal")
        assert h1[0] > 0.1  # alpha = 0.1 floor
        assert h1[1] < 0.01  # alpha = 0.001 regime
        assert h1[2] < h1[1]  # alpha = 0 smaller still

    def test_alpha_zero_overhead_positive(self, results):
        # Paper: strictly above 1e-5 at alpha = 0 (no free lunch).
        H = results[2]
        assert H.column_array("sc1_optimal")[-1] > 1e-5


class TestFig5:
    @pytest.fixture(scope="class")
    def results(self):
        return fig5_error_rate.run(
            lambdas=np.logspace(-12, -8, 5), settings=NO_SIM
        )

    def test_slope_fits_match_theory(self, results):
        notes = "\n".join(results[0].notes)
        # Fitted orders quoted against theory in the notes.
        assert "theory -0.250" in notes
        assert "theory -0.333" in notes

    def test_p_star_decreases_with_lambda(self, results):
        P = results[0]
        for col in ("sc1_optimal", "sc3_optimal"):
            values = P.column_array(col)
            assert np.all(np.diff(values) < 0)

    def test_numerical_order_near_quarter_sc1(self, results):
        from repro.analysis.asymptotics import fit_loglog_slope

        P = results[0]
        lams = P.column_array("lambda_ind")
        fit = fit_loglog_slope(lams, P.column_array("sc1_optimal"))
        assert fit.matches(-0.25, tol=0.03)

    def test_numerical_order_near_third_sc3(self, results):
        from repro.analysis.asymptotics import fit_loglog_slope

        P = results[0]
        lams = P.column_array("lambda_ind")
        fit = fit_loglog_slope(lams, P.column_array("sc3_optimal"))
        assert fit.matches(-1.0 / 3.0, tol=0.03)

    def test_simulated_overhead_tends_to_floor(self):
        res = fig5_error_rate.run(
            lambdas=np.array([1e-12, 1e-8]), scenarios=(1,), settings=SETTINGS
        )
        H = res[2].column_array("sc1_optimal")
        assert H[0] < H[1]  # more reliable -> closer to 0.1
        assert H[0] == pytest.approx(0.1, abs=0.005)


class TestFig6:
    @pytest.fixture(scope="class")
    def results(self):
        return fig6_alpha_zero.run(lambdas=np.logspace(-11, -8, 4), settings=NO_SIM)

    def test_orders(self, results):
        from repro.analysis.asymptotics import fit_loglog_slope

        P = results[0]
        lams = P.column_array("lambda_ind")
        fit1 = fit_loglog_slope(lams, P.column_array("scenario_1"))
        fit3 = fit_loglog_slope(lams, P.column_array("scenario_3"))
        assert fit1.matches(-0.5, tol=0.05)
        assert fit3.matches(-1.0, tol=0.05)

    def test_period_constant_for_bounded_costs(self, results):
        T = results[1]
        values = T.column_array("scenario_3")
        assert values.max() / values.min() < 1.05  # O(1) in lambda

    def test_period_grows_for_linear_costs(self, results):
        T = results[1]
        values = T.column_array("scenario_1")
        assert values[0] > values[-1] * 10  # ~ lambda^-1/2 over 3 decades


class TestFig7:
    @pytest.fixture(scope="class")
    def results(self):
        return fig7_downtime.run(
            downtimes=np.array([0.0, 5400.0, 10800.0]), settings=SETTINGS
        )

    def test_first_order_flat_in_d(self, results):
        P = results[0]
        values = P.column_array("sc1_first_order")
        assert values.max() == values.min()

    def test_numerical_decreases_in_d(self, results):
        P = results[0]
        values = P.column_array("sc1_optimal")
        assert values[0] > values[-1]

    def test_overheads_stay_close(self, results):
        H = results[2]
        fo = H.column_array("sc1_first_order")
        opt = H.column_array("sc1_optimal")
        assert np.all(np.abs(fo - opt) / opt < 0.05)
