"""The analytic batch engine's memo, keys and sweep integration."""

from __future__ import annotations

import json

import pytest

from repro.core import (
    AmdahlSpeedup,
    GustafsonSpeedup,
    PatternModel,
    stack_models,
)
from repro.experiments.analytic import (
    ANALYTIC_VERSION,
    AnalyticMemo,
    AnalyticPoint,
    batch_enabled,
    evaluate_analytic,
    model_key,
)
from repro.experiments.common import SimSettings
from repro.experiments.pipeline import SimulationPipeline
from repro.experiments.registry import REGISTRY
from repro.experiments.runner import main
from repro.experiments.spec import run_study
from repro.platforms import build_model

NO_SIM = SimSettings(simulate=False)


class TestModelKey:
    def test_equal_models_share_a_key(self):
        a = build_model("Hera", 1)
        b = build_model("Hera", 1)
        assert model_key(a) == model_key(b)
        assert isinstance(model_key(a), str)

    def test_every_result_relevant_parameter_changes_the_key(self):
        base = model_key(build_model("Hera", 1))
        assert model_key(build_model("Hera", 2)) != base
        assert model_key(build_model("Hera", 1, alpha=1e-5)) != base
        assert model_key(build_model("Hera", 1, lambda_ind=1e-6)) != base
        assert model_key(build_model("Hera", 1, downtime=600.0)) != base

    def test_exotic_profiles_are_uncacheable(self):
        hera = build_model("Hera", 1)
        exotic = PatternModel(
            errors=hera.errors, costs=hera.costs, speedup=GustafsonSpeedup(0.1)
        )
        assert model_key(exotic) is None

    def test_array_valued_parameters_are_uncacheable(self):
        stacked = stack_models([build_model("Hera", 1), build_model("Hera", 2)])
        assert model_key(stacked) is None


class TestAnalyticMemo:
    def point(self, seed: float = 1.0) -> AnalyticPoint:
        return AnalyticPoint(
            P_fo=seed, T_fo=2 * seed, H_pred_fo=None,
            P_num=3 * seed, T_num=4 * seed, H_pred_num=5 * seed,
        )

    def test_roundtrip_is_exact(self, tmp_path):
        path = tmp_path / "memo.json"
        memo = AnalyticMemo(path)
        point = self.point(0.1)  # 0.1 is not exactly representable
        memo.put("k", point)
        memo.count(served=2, evaluated=1)
        memo.flush()
        reloaded = AnalyticMemo(path)
        assert reloaded.get("k") == point
        assert (reloaded.served, reloaded.evaluated) == (2, 1)
        assert len(reloaded) == 1
        assert reloaded.hit_rate == pytest.approx(2 / 3)

    def test_version_guard_discards_stale_tables(self, tmp_path):
        path = tmp_path / "memo.json"
        path.write_text(json.dumps({
            "version": ANALYTIC_VERSION + 1,
            "served": 9, "evaluated": 9,
            "entries": {"k": self.point().as_list()},
        }))
        memo = AnalyticMemo(path)
        assert len(memo) == 0
        assert memo.lookups == 0

    def test_corrupt_file_is_tolerated(self, tmp_path):
        path = tmp_path / "memo.json"
        path.write_text("{not json")
        memo = AnalyticMemo(path)
        assert len(memo) == 0
        memo.put("k", self.point())
        memo.flush()
        assert AnalyticMemo(path).get("k") == self.point()

    def test_pathless_memo_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        memo = AnalyticMemo()
        memo.put("k", self.point())
        memo.flush()
        assert list(tmp_path.iterdir()) == []

    def test_clean_flush_is_a_noop(self, tmp_path):
        path = tmp_path / "memo.json"
        memo = AnalyticMemo(path)
        memo.flush()
        assert not path.exists()


class TestEvaluateAnalytic:
    def test_intra_call_dedup(self):
        model = build_model("Hera", 1)
        memo = AnalyticMemo()
        points, evaluated, served = evaluate_analytic([model, model, model], memo)
        assert (evaluated, served) == (1, 2)
        assert points[0] == points[1] == points[2]
        assert (memo.evaluated, memo.served) == (1, 2)

    def test_memo_serves_across_calls(self):
        model = build_model("Hera", 1)
        memo = AnalyticMemo()
        first, _, _ = evaluate_analytic([model], memo)
        again, evaluated, served = evaluate_analytic([model], memo)
        assert (evaluated, served) == (0, 1)
        assert again[0] == first[0]

    def test_uncacheable_models_always_evaluate(self):
        hera = build_model("Hera", 1)
        exotic = PatternModel(
            errors=hera.errors, costs=hera.costs, speedup=GustafsonSpeedup(0.1)
        )
        memo = AnalyticMemo()
        _, evaluated, served = evaluate_analytic([exotic, exotic], memo)
        assert (evaluated, served) == (2, 0)
        assert len(memo) == 0

    def test_counters_reach_pending_report(self):
        models = [build_model("Hera", sc) for sc in (1, 2)]
        with SimulationPipeline(jobs=1) as pipe:
            pipe.current_group = "studyA"
            pipe.evaluate_analytic(models)
            pipe.evaluate_analytic(models)
            report = pipe.pending_report()
        assert report["studyA"]["analytic_evaluated"] == 2
        assert report["studyA"]["analytic_served"] == 2


class TestSweepEngineParity:
    def test_batch_flag_defaults_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_ANALYTIC_BATCH", raising=False)
        assert batch_enabled()
        monkeypatch.setenv("REPRO_ANALYTIC_BATCH", "0")
        assert not batch_enabled()

    def test_sweep_tables_identical_with_engine_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYTIC_BATCH", "1")
        batch = run_study(REGISTRY["fig5"], settings=NO_SIM)
        monkeypatch.setenv("REPRO_ANALYTIC_BATCH", "0")
        scalar = run_study(REGISTRY["fig5"], settings=NO_SIM)
        assert [r.table() for r in batch] == [r.table() for r in scalar]


class TestCacheStatsCLI:
    def test_reports_analytic_memo(self, tmp_path, capsys):
        memo = AnalyticMemo(tmp_path / "analytic_memo.json")
        memo.put("k", AnalyticPoint(None, None, None, 1.0, 2.0, 3.0))
        memo.count(served=3, evaluated=1)
        memo.flush()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[analytic] 1 memo entries, 3/4 served (hit rate 75.00%)" in out
