"""Durable runs end to end: crash, resume, byte-identity, invalidation.

The acceptance contract of the durable-run subsystem: a run killed
mid-flight and resumed produces **byte-identical stdout** to an
uninterrupted run, with **zero duplicate computations** journaled in
its manifest; a ``BACKEND_VERSION`` bump invalidates (and recomputes)
exactly the affected keys.  Everything here drives the real CLI
(``main``) — the same entry points the ``resume-smoke`` CI job uses.
"""

from __future__ import annotations

import json

import pytest

import repro.sim.manifest as manifest_mod
import repro.sim.plan as plan_mod
from repro.experiments.runner import main
from repro.sim.faults import CRASH_EXIT_CODE

#: Tiny but non-trivial fidelity: enough points for a mid-run crash.
FAST_ARGS = ["--runs", "4", "--patterns", "3"]


def _strip_volatile(text: str) -> str:
    return "\n".join(
        line
        for line in text.splitlines()
        if not line.startswith(("[done in", "[cache]"))
    )


def _manifest(runs_dir, run_id) -> dict:
    return json.loads((runs_dir / run_id / "manifest.json").read_text())


def _run_args(tmp_path, run_id="r1"):
    return [
        "fig5", *FAST_ARGS,
        "--cache-dir", str(tmp_path / "cache"),
        "--runs-dir", str(tmp_path / "runs"),
        "--run-id", run_id,
    ]


class TestCrashResume:
    def test_killed_run_resumes_byte_identical(self, tmp_path, capsys):
        # Golden: the same sweep uninterrupted, no journaling at all.
        assert main(["fig5", *FAST_ARGS]) == 0
        golden = _strip_volatile(capsys.readouterr().out)

        # Crash after 3 completions: the CLI dies with the dedicated code.
        assert main(_run_args(tmp_path) + ["--fault-plan", "crash-after=3"]) \
            == CRASH_EXIT_CODE
        capsys.readouterr()
        manifest = _manifest(tmp_path / "runs", "r1")
        assert manifest["status"] == "running"
        assert len(manifest["fates"]) == 3  # exactly the delivered prefix

        # Resume through the dedicated command: replays the stored argv
        # (minus the one-shot fault plan) with --resume appended.
        assert main(
            ["resume", "r1", "--runs-dir", str(tmp_path / "runs")]
        ) == 0
        captured = capsys.readouterr()
        assert _strip_volatile(captured.out) == golden
        assert "[resume]" in captured.err
        manifest = _manifest(tmp_path / "runs", "r1")
        assert manifest["status"] == "complete"
        assert manifest["recomputed"] == 0  # zero duplicate computations
        assert manifest["reused"] == 3  # the crashed run's work, reused

    def test_clean_second_resume_recomputes_nothing(self, tmp_path, capsys):
        assert main(_run_args(tmp_path)) == 0
        total = len(_manifest(tmp_path / "runs", "r1")["fates"])
        capsys.readouterr()
        assert main(["fig5", *FAST_ARGS]) == 0
        golden = _strip_volatile(capsys.readouterr().out)

        assert main(_run_args(tmp_path) + ["--resume"]) == 0
        assert _strip_volatile(capsys.readouterr().out) == golden
        manifest = _manifest(tmp_path / "runs", "r1")
        assert manifest["recomputed"] == 0
        assert manifest["reused"] == total  # every point cache-served
        assert manifest["resumes"] == 1

    def test_resume_command_execution_overrides(self, tmp_path, capsys):
        assert main(["fig5", *FAST_ARGS]) == 0
        golden = _strip_volatile(capsys.readouterr().out)
        assert main(_run_args(tmp_path) + ["--fault-plan", "crash-after=2"]) \
            == CRASH_EXIT_CODE
        capsys.readouterr()
        # Overriding parallelism on resume must not change the bytes —
        # the manifest's config hash ignores execution-only flags.
        assert main(
            ["resume", "r1", "--runs-dir", str(tmp_path / "runs"),
             "--jobs", "1", "--max-inflight", "2"]
        ) == 0
        assert _strip_volatile(capsys.readouterr().out) == golden
        assert _manifest(tmp_path / "runs", "r1")["recomputed"] == 0

    def test_corrupt_entry_is_invalidated_and_recomputed(self, tmp_path, capsys):
        assert main(_run_args(tmp_path)) == 0
        total = len(_manifest(tmp_path / "runs", "r1")["fates"])
        capsys.readouterr()
        # corrupt-entry truncates one cached npz before the round runs;
        # resume validation must invalidate exactly that key.
        assert main(
            _run_args(tmp_path) + ["--resume", "--fault-plan", "corrupt-entry=0"]
        ) == 0
        err = capsys.readouterr().err
        assert "1 invalidated (corrupt)" in err
        manifest = _manifest(tmp_path / "runs", "r1")
        assert manifest["reused"] == total - 1
        # The recomputed counter tracks *duplicate* work (computed on
        # top of a journaled computed fate) — rebuilding an invalidated
        # entry is that, and it is the only one.
        assert manifest["recomputed"] == 1


class TestBackendBumpInvalidation:
    def test_bump_staleness_recomputes_under_new_keys(
        self, tmp_path, capsys, monkeypatch
    ):
        assert main(_run_args(tmp_path)) == 0
        before = _manifest(tmp_path / "runs", "r1")
        total = len(before["fates"])
        capsys.readouterr()

        monkeypatch.setattr(
            plan_mod, "BACKEND_VERSION", plan_mod.BACKEND_VERSION + 1
        )
        monkeypatch.setattr(
            manifest_mod, "BACKEND_VERSION", plan_mod.BACKEND_VERSION
        )
        assert main(_run_args(tmp_path) + ["--resume"]) == 0
        err = capsys.readouterr().err
        assert "BACKEND_VERSION changed" in err
        assert f"{total} stale" in err
        after = _manifest(tmp_path / "runs", "r1")
        # Every old key went stale; every point recomputed under a new
        # key — none of which counts as duplicate work.
        assert len(after["fates"]) == 2 * total
        assert after["recomputed"] == 0 and after["reused"] == 0
        assert after["backend_version"] == plan_mod.BACKEND_VERSION


class TestScenarioResume:
    TOML = """
[scenario]
name = "tiny"
study = "fig5"
platform = "Hera"
replicates = 2
seed = 11
"""

    def test_scenario_run_crash_and_resume(self, tmp_path, capsys):
        toml = tmp_path / "tiny.toml"
        toml.write_text(self.TOML)
        args = [
            "scenario", "run", str(toml),
            "--out", str(tmp_path / "out"),
            "--runs", "3", "--patterns", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--runs-dir", str(tmp_path / "runs"),
            "--run-id", "s1",
        ]
        assert main(args + ["--fault-plan", "crash-after=2"]) == CRASH_EXIT_CODE
        assert _manifest(tmp_path / "runs", "s1")["status"] == "running"
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        manifest = _manifest(tmp_path / "runs", "s1")
        assert manifest["status"] == "complete"
        assert manifest["recomputed"] == 0
        assert manifest["reused"] == 2
        # The member result files all landed despite the interruption.
        members = list((tmp_path / "out").glob("member_*.json"))
        assert len(members) == 2


class TestCliValidation:
    def test_resume_requires_run_id(self, tmp_path):
        with pytest.raises(SystemExit, match="--resume requires --run-id"):
            main(["fig5", *FAST_ARGS, "--resume",
                  "--cache-dir", str(tmp_path / "c")])

    def test_run_id_requires_a_cache(self, tmp_path):
        with pytest.raises(SystemExit, match="needs a result cache"):
            main(["fig5", *FAST_ARGS, "--run-id", "x",
                  "--runs-dir", str(tmp_path / "runs")])

    def test_rerun_without_resume_refuses(self, tmp_path, capsys):
        assert main(_run_args(tmp_path)) == 0
        with pytest.raises(SystemExit, match="already has a manifest"):
            main(_run_args(tmp_path))

    def test_resume_unknown_run_refuses(self, tmp_path):
        with pytest.raises(SystemExit, match="no run manifest"):
            main(["resume", "ghost", "--runs-dir", str(tmp_path / "runs")])

    def test_bad_fault_plan_refuses(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown fault-plan term"):
            main(["fig5", *FAST_ARGS, "--fault-plan", "explode=1"])

    def test_claim_ttl_requires_stealing(self):
        with pytest.raises(SystemExit, match="--claim-ttl"):
            main(["fig5", *FAST_ARGS, "--claim-ttl", "60"])

    def test_dry_run_journals_nothing(self, tmp_path, capsys):
        assert main(_run_args(tmp_path) + ["--dry-run"]) == 0
        assert not (tmp_path / "runs").exists()


class TestRetryOnTheCli:
    def test_transient_faults_retry_to_clean_output(self, tmp_path, capsys):
        assert main(["fig5", *FAST_ARGS]) == 0
        golden = _strip_volatile(capsys.readouterr().out)
        assert main(["fig5", *FAST_ARGS, "--fault-plan", "fail-job=2:2"]) == 0
        assert _strip_volatile(capsys.readouterr().out) == golden
