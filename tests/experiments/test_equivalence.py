"""Registry-vs-legacy equivalence: every study, every executor, bit for bit.

The goldens under ``goldens/figures_fast.json`` are the tables the
pre-registry figure modules printed at FAST fidelity with the default
seed (captured before the refactor).  Every registry-built study must
reproduce them byte-identically — serially, over a process pool, as
two merged shards (static partition and work-stealing claims), and
under the event-driven scheduler at any in-flight window — because
the plan/key layer guarantees the same chunk jobs, seeds and (chunk-
ordered) reduction whatever the executor or completion interleaving.
``goldens/all_jobs2.txt`` additionally pins the full ``all --jobs 2``
CLI transcript, which the scheduled run must emit byte-for-byte.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.experiments.common import SimSettings
from repro.experiments.pipeline import SimulationPipeline
from repro.experiments.registry import REGISTRY, RUNNERS
from repro.experiments.runner import main
from repro.experiments.spec import stage_study
from repro.sim.executors import ShardedExecutor, merge_shard_dirs

GOLDENS = json.loads(
    (Path(__file__).parent / "goldens" / "figures_fast.json").read_text()
)

#: FAST fidelity, default seed — exactly how the goldens were captured.
SETTINGS = SimSettings()

ALL_STUDIES = sorted(REGISTRY)


def run_tables(name: str, pipeline=None) -> list[str]:
    return [r.table() for r in RUNNERS[name](settings=SETTINGS, pipeline=pipeline)]


class TestSerialGolden:
    @pytest.mark.parametrize("name", ALL_STUDIES)
    def test_matches_prerefactor_tables(self, name):
        assert run_tables(name) == GOLDENS[name]


class TestPooledGolden:
    @pytest.mark.parametrize("name", ALL_STUDIES)
    def test_pool_executor_bit_identical(self, name):
        with SimulationPipeline(jobs=2) as pipe:
            got = run_tables(name, pipeline=pipe)
        assert got == GOLDENS[name]


class TestShardedGolden:
    @pytest.mark.parametrize("name", ALL_STUDIES)
    def test_two_shards_merge_to_golden(self, name, tmp_path):
        # Each shard computes its deterministic slice into its own
        # content-addressed directory ...
        for index in (0, 1):
            shard_dir = tmp_path / f"s{index}"
            executor = ShardedExecutor(index, 2)
            with SimulationPipeline(executor=executor, cache_dir=shard_dir) as pipe:
                staged = stage_study(
                    REGISTRY[name], settings=SETTINGS, pipeline=pipe
                )
                pipe.resolve()
                del staged  # shard runs never assemble
        # ... the shards merge into one cache ...
        merged = tmp_path / "merged"
        merge_shard_dirs([tmp_path / "s0", tmp_path / "s1"], merged)
        # ... and an unsharded run served from the merged cache must be
        # bit-identical to the single-machine tables.
        with SimulationPipeline(jobs=1, cache_dir=merged) as pipe:
            got = run_tables(name, pipeline=pipe)
            hits, misses = pipe.cache_stats
        assert got == GOLDENS[name]
        assert misses == 0, "merged shards must cover every simulated point"

    def test_shards_partition_points(self, tmp_path):
        """The two fig5 shards are disjoint and cover all 54 points."""
        counts = []
        for index in (0, 1):
            shard_dir = tmp_path / f"s{index}"
            executor = ShardedExecutor(index, 2)
            with SimulationPipeline(executor=executor, cache_dir=shard_dir) as pipe:
                stage_study(REGISTRY["fig5"], settings=SETTINGS, pipeline=pipe)
                pipe.resolve()
            counts.append(len(list(shard_dir.glob("*.npz"))))
        assert all(c > 0 for c in counts)
        copied, skipped = merge_shard_dirs(
            [tmp_path / "s0", tmp_path / "s1"], tmp_path / "merged"
        )
        assert skipped == 0  # disjoint
        assert copied == sum(counts)


class TestWorkStealingShardedGolden:
    @pytest.mark.parametrize("name", ALL_STUDIES)
    def test_two_stealing_shards_merge_to_golden(self, name, tmp_path):
        # Sequential stealing shards: the first claims (steals) every
        # key on the shared board, the second finds nothing left ...
        for index in (0, 1):
            executor = ShardedExecutor(
                index, 2, mode="stealing", claim_dir=tmp_path / "claims"
            )
            with SimulationPipeline(
                executor=executor, cache_dir=tmp_path / f"s{index}"
            ) as pipe:
                stage_study(REGISTRY[name], settings=SETTINGS, pipeline=pipe)
                pipe.resolve()
        # ... and the merged union still reproduces the golden tables.
        merged = tmp_path / "merged"
        merge_shard_dirs([tmp_path / "s0", tmp_path / "s1"], merged)
        with SimulationPipeline(jobs=1, cache_dir=merged) as pipe:
            got = run_tables(name, pipeline=pipe)
            _, misses = pipe.cache_stats
        assert got == GOLDENS[name]
        assert misses == 0, "stolen shards must cover every simulated point"

    def test_interleaved_stealing_shards_partition_fig5(self, tmp_path):
        """Alternating claim rounds split the points; the union covers."""
        pipes = []
        for index in (0, 1):
            executor = ShardedExecutor(
                index, 2, mode="stealing", claim_dir=tmp_path / "claims"
            )
            pipe = SimulationPipeline(executor=executor, cache_dir=tmp_path / f"s{index}")
            stage_study(REGISTRY["fig5"], settings=SETTINGS, pipeline=pipe)
            pipes.append(pipe)
        # Shard 1 resolves first this time, so it claims (its own
        # partition first, then steals shard 0's); shard 0 then gets
        # whatever is left: nothing.
        pipes[1].resolve()
        pipes[0].resolve()
        counts = [len(list((tmp_path / f"s{i}").glob("*.npz"))) for i in (0, 1)]
        for pipe in pipes:
            pipe.close()
        assert counts[0] == 0 and counts[1] == 54
        copied, skipped = merge_shard_dirs(
            [tmp_path / "s0", tmp_path / "s1"], tmp_path / "merged"
        )
        assert (copied, skipped) == (54, 0)


class TestScheduledGolden:
    """Event-driven scheduling: any window, any executor, same bytes."""

    @pytest.mark.parametrize("name", ALL_STUDIES)
    @pytest.mark.parametrize("inflight", [1, 8])
    def test_scheduled_windows_bit_identical(self, name, inflight):
        with SimulationPipeline(jobs=2, max_inflight=inflight) as pipe:
            got = run_tables(name, pipeline=pipe)
        assert got == GOLDENS[name]

    def test_all_cli_scheduled_matches_wave_golden(self, capsys):
        """`all --jobs 2 --max-inflight 8` == the pre-scheduler golden.

        The golden transcript was captured from the wave-barriered
        runner; the event-driven global window must emit the identical
        bytes (the last line is a normalized `[done in Xs]`).
        """
        golden = (Path(__file__).parent / "goldens" / "all_jobs2.txt").read_text()
        assert main(["all", "--jobs", "2", "--max-inflight", "8"]) == 0
        out = capsys.readouterr().out
        normalized = re.sub(r"\[done in [0-9.]+s\]", "[done in Xs]", out)
        assert normalized == golden


class TestSchedulerCLI:
    def test_max_inflight_validated(self):
        with pytest.raises(SystemExit, match="--max-inflight"):
            main(["fig5", "--max-inflight", "0"])

    def test_progress_lines_on_stderr_only(self, capsys):
        assert main(["fig2", "--progress", "--runs", "4", "--patterns", "6"]) == 0
        captured = capsys.readouterr()
        assert "[progress] fig2" in captured.err
        assert captured.err.count("[progress]") == 11  # one per point
        assert "[progress]" not in captured.out
        assert "Figure 2" in captured.out

    def test_progress_off_by_default(self, capsys):
        assert main(["fig2", "--runs", "4", "--patterns", "6"]) == 0
        assert "[progress]" not in capsys.readouterr().err

    def test_dry_run_reports_without_executing(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["fig5", "--dry-run", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "[dry-run] fig5: 54 points (54 unique, 0 deduped), " \
            "0 cache hits, 54 to compute -> 54 chunk jobs" in out
        assert "nothing executed" in out
        assert "Figure 5" not in out  # no tables
        assert list(Path(cache).glob("*.npz")) == []  # nothing simulated

    def test_dry_run_sees_warm_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["fig5", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["sweep", "fig5", "--dry-run", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "54 cache hits, 0 to compute -> 0 chunk jobs" in out

    def test_stealing_cli_flags_validated(self, tmp_path):
        shard = ["--shard-index", "0", "--shard-count", "2",
                 "--shard-dir", str(tmp_path / "s0")]
        with pytest.raises(SystemExit, match="claim-dir"):
            main(["fig5", *shard, "--shard-mode", "stealing"])
        with pytest.raises(SystemExit, match="claim-dir"):
            main(["fig5", *shard, "--claim-dir", str(tmp_path / "claims")])
        with pytest.raises(SystemExit, match="shard-mode"):
            main(["fig5", "--shard-mode", "stealing",
                  "--claim-dir", str(tmp_path / "claims")])

    def test_stealing_sweep_merge_roundtrip(self, tmp_path, capsys):
        """Stealing shards + merge == unsharded, via the CLI."""
        base = ["--runs", "6", "--patterns", "8"]
        steal = ["--shard-count", "2", "--shard-mode", "stealing",
                 "--claim-dir", str(tmp_path / "claims")]
        for index in ("0", "1"):
            assert main(
                ["sweep", "fig5", *base, "--shard-index", index, *steal,
                 "--shard-dir", str(tmp_path / f"s{index}")]
            ) == 0
        capsys.readouterr()
        assert main(
            ["merge", str(tmp_path / "s0"), str(tmp_path / "s1"),
             "--cache-dir", str(tmp_path / "merged")]
        ) == 0
        capsys.readouterr()
        assert main(["fig5", *base, "--cache-dir", str(tmp_path / "merged")]) == 0
        merged_out = capsys.readouterr().out
        assert "0 misses" in merged_out


class TestShardCLI:
    def test_sweep_merge_roundtrip_matches_unsharded(self, tmp_path, capsys):
        """The acceptance flow: 2-shard `sweep fig5` + `merge` == unsharded."""
        base = ["--runs", "10", "--patterns", "20"]
        for index in ("0", "1"):
            assert main(
                ["sweep", "fig5", *base, "--shard-index", index,
                 "--shard-count", "2", "--shard-dir", str(tmp_path / f"s{index}")]
            ) == 0
        shard_out = capsys.readouterr().out
        assert "Figure 5" not in shard_out  # shard runs do not emit tables
        assert "[shard 0/2]" in shard_out and "[shard 1/2]" in shard_out
        assert main(
            ["merge", str(tmp_path / "s0"), str(tmp_path / "s1"),
             "--cache-dir", str(tmp_path / "merged")]
        ) == 0
        capsys.readouterr()
        assert main(["fig5", *base, "--cache-dir", str(tmp_path / "merged")]) == 0
        merged_tables = capsys.readouterr().out
        assert main(["fig5", *base]) == 0
        fresh_tables = capsys.readouterr().out

        def strip_volatile(text: str) -> str:
            return "\n".join(
                line
                for line in text.splitlines()
                if not line.startswith(("[done in", "[cache]"))
            )

        assert strip_volatile(merged_tables) == strip_volatile(fresh_tables)
        assert "0 misses" in merged_tables

    def test_shard_flags_validated(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fig5", "--shard-count", "2"])  # no --shard-dir
        with pytest.raises(SystemExit):
            main(["fig5", "--shard-index", "1"])  # no --shard-count
        with pytest.raises(SystemExit):
            main(
                ["fig5", "--shard-index", "5", "--shard-count", "2",
                 "--shard-dir", str(tmp_path)]
            )

    def test_shard_refuses_cache_flags(self, tmp_path):
        """--cache-dir/--no-cache would be silently overridden: refuse."""
        shard = ["--shard-index", "0", "--shard-count", "2",
                 "--shard-dir", str(tmp_path / "s0")]
        with pytest.raises(SystemExit, match="cannot be combined"):
            main(["fig5", *shard, "--cache-dir", str(tmp_path / "warm")])
        with pytest.raises(SystemExit, match="cannot be combined"):
            main(["fig5", *shard, "--no-cache"])

    def test_shard_accounting_balances(self, tmp_path):
        """computed-or-served + skipped declarations == submitted points."""
        executor = ShardedExecutor(0, 2)
        with SimulationPipeline(executor=executor, cache_dir=tmp_path) as pipe:
            stage_study(REGISTRY["fig5"], settings=SETTINGS, pipeline=pipe)
            stage_study(REGISTRY["fig5"], settings=SETTINGS, pipeline=pipe)
            pipe.resolve()
            # The duplicate study re-declares every point; skipped counts
            # declarations, so both copies of a foreign point count.
            assert pipe.points_submitted == 2 * 54
            assert 0 < pipe.points_skipped < pipe.points_submitted
            served = pipe.points_submitted - pipe.points_skipped
            owned_unique = len(list(tmp_path.glob("*.npz")))
            # Each owned unique point serves both of its declarations.
            assert served == 2 * owned_unique


class TestStreamingAll:
    def test_all_streams_in_registry_order(self, capsys):
        assert main(["all", "--no-sim"]) == 0
        out = capsys.readouterr().out
        positions = [out.index(marker) for marker in
                     ("Figure 2", "Figure 3(a)", "Figure 5(a)", "Extension")]
        assert positions == sorted(positions)

    def test_figure_emitted_before_later_waves_resolve(self):
        """fig2's table is ready while fig5's points are still pending."""
        from repro.io.stream import StreamingEmitter
        import io

        with SimulationPipeline(jobs=1) as pipe:
            first = stage_study(REGISTRY["fig2"], settings=SETTINGS, pipeline=pipe)
            later = stage_study(REGISTRY["fig5"], settings=SETTINGS, pipeline=pipe)
            buffer = io.StringIO()
            emitter = StreamingEmitter(stream=buffer)
            emitter.add(first)
            emitter.add(later)
            pipe.resolve(count=first.n_pending)
            emitter.pump()
            assert "Figure 2" in buffer.getvalue()
            assert "Figure 5" not in buffer.getvalue()
            assert later.n_pending > 0 and not later.ready()
            pipe.resolve()
            emitter.pump()
        assert "Figure 5(c)" in buffer.getvalue()
