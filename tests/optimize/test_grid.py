"""Logarithmic zooming grid search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.optimize.grid import GridResult, log_grid, refine_log_minimum


class TestLogGrid:
    def test_endpoints(self):
        g = log_grid(1.0, 1000.0, 4)
        assert g[0] == pytest.approx(1.0)
        assert g[-1] == pytest.approx(1000.0)

    def test_geometric_spacing(self):
        g = log_grid(1.0, 10_000.0, 5)
        ratios = g[1:] / g[:-1]
        np.testing.assert_allclose(ratios, 10.0)

    def test_rejects_bad_range(self):
        with pytest.raises(OptimizationError):
            log_grid(10.0, 1.0, 5)
        with pytest.raises(OptimizationError):
            log_grid(0.0, 1.0, 5)
        with pytest.raises(OptimizationError):
            log_grid(1.0, 10.0, 1)


class TestRefine:
    def test_finds_interior_minimum(self):
        target = 543.21

        def f(x):
            return (np.log(x / target)) ** 2

        result = refine_log_minimum(f, 1.0, 1e6)
        assert result.interior
        assert result.x == pytest.approx(target, rel=1e-6)

    def test_wide_dynamic_range(self):
        # Minimum at 1e10 inside [1, 1e13] — the Figure 6 situation.
        target = 1e10

        def f(x):
            return np.abs(np.log10(x) - 10.0) + 1.0

        result = refine_log_minimum(f, 1.0, 1e13)
        assert result.x == pytest.approx(target, rel=1e-4)

    def test_monotone_decreasing_flags_upper(self):
        result = refine_log_minimum(lambda x: 1.0 / x, 1.0, 1e4)
        assert result.at_upper
        assert not result.interior

    def test_monotone_increasing_flags_lower(self):
        result = refine_log_minimum(lambda x: x, 1.0, 1e4)
        assert result.at_lower

    def test_handles_nonfinite_regions(self):
        # Simulate overflow on the right half of the domain.
        def f(x):
            x = np.asarray(x, dtype=float)
            out = (np.log(x / 100.0)) ** 2
            return np.where(x > 1e4, np.inf, out)

        result = refine_log_minimum(f, 1.0, 1e8)
        assert result.x == pytest.approx(100.0, rel=1e-5)

    def test_all_nonfinite_raises(self):
        with pytest.raises(OptimizationError):
            refine_log_minimum(lambda x: np.full_like(np.asarray(x, float), np.nan), 1, 10)

    def test_nfev_scales_with_budget(self):
        calls = {"n": 0}

        def f(x):
            calls["n"] += np.size(x)
            return (np.log(x / 50.0)) ** 2

        result = refine_log_minimum(f, 1.0, 1e4, points=9, rounds=5)
        assert result.nfev == calls["n"]
        assert result.nfev <= 9 * 5

    def test_result_type(self):
        result = refine_log_minimum(lambda x: (np.log(x / 7.0)) ** 2, 1.0, 100.0)
        assert isinstance(result, GridResult)
        assert result.fun == pytest.approx(0.0, abs=1e-12)
