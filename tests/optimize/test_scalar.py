"""Scalar minimisers: bracket, golden section, Brent — vs scipy."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import optimize as sp_optimize

from repro.exceptions import OptimizationError
from repro.optimize.scalar import (
    bracket_minimum,
    brent,
    golden_section,
    minimize_scalar,
)


def quadratic(x: float) -> float:
    return (x - 3.7) ** 2 + 1.5


def quartic(x: float) -> float:
    return (x - 1.0) ** 4 + 0.1 * x


def cosh_like(x: float) -> float:
    # Smooth, asymmetric, single minimum — like our overhead objective.
    return 5.0 / x + 0.002 * x + 0.1 if x > 0 else math.inf


class TestBracket:
    def test_brackets_quadratic(self):
        a, m, b, _ = bracket_minimum(quadratic, 0.0, 1.0)
        assert a < m < b
        assert quadratic(m) <= quadratic(a)
        assert quadratic(m) <= quadratic(b)
        assert a <= 3.7 <= b

    def test_brackets_from_wrong_side(self):
        a, m, b, _ = bracket_minimum(quadratic, 10.0, 9.0)
        assert a < m < b
        assert a <= 3.7 <= b

    def test_monotone_raises(self):
        with pytest.raises(OptimizationError):
            bracket_minimum(lambda x: x, 0.0, 1.0, max_iter=30)


class TestGoldenSection:
    def test_quadratic(self):
        result = golden_section(quadratic, 0.0, 10.0)
        assert result.converged
        assert result.x == pytest.approx(3.7, abs=1e-6)

    def test_quartic(self):
        result = golden_section(quartic, -5.0, 5.0)
        expected = sp_optimize.minimize_scalar(quartic, bounds=(-5, 5), method="bounded").x
        assert result.x == pytest.approx(expected, abs=1e-4)

    def test_invalid_interval(self):
        with pytest.raises(OptimizationError):
            golden_section(quadratic, 5.0, 1.0)


class TestBrent:
    def test_quadratic_high_precision(self):
        result = brent(quadratic, 0.0, 10.0)
        assert result.converged
        assert result.x == pytest.approx(3.7, abs=1e-9)
        assert result.fun == pytest.approx(1.5, abs=1e-12)

    def test_matches_scipy_on_quartic(self):
        ours = brent(quartic, -5.0, 5.0)
        scipy_result = sp_optimize.minimize_scalar(
            quartic, bounds=(-5, 5), method="bounded", options={"xatol": 1e-12}
        )
        assert ours.x == pytest.approx(scipy_result.x, abs=1e-6)

    def test_matches_scipy_on_overhead_shape(self):
        ours = brent(cosh_like, 1.0, 10_000.0)
        scipy_result = sp_optimize.minimize_scalar(
            cosh_like, bounds=(1, 10_000), method="bounded", options={"xatol": 1e-10}
        )
        assert ours.x == pytest.approx(scipy_result.x, rel=1e-6)

    def test_fewer_evaluations_than_golden(self):
        b = brent(quadratic, 0.0, 10.0)
        g = golden_section(quadratic, 0.0, 10.0)
        assert b.nfev < g.nfev

    def test_minimum_at_edge(self):
        result = brent(lambda x: x, 0.0, 1.0)
        assert result.x == pytest.approx(0.0, abs=1e-6)

    def test_invalid_interval(self):
        with pytest.raises(OptimizationError):
            brent(quadratic, 2.0, 2.0)


class TestMinimizeScalar:
    def test_with_bounds(self):
        result = minimize_scalar(quadratic, bounds=(0.0, 10.0))
        assert result.x == pytest.approx(3.7, abs=1e-8)

    def test_with_bracket(self):
        result = minimize_scalar(quadratic, bracket=(0.0, 1.0))
        assert result.x == pytest.approx(3.7, abs=1e-8)

    def test_requires_exactly_one_interval_spec(self):
        with pytest.raises(OptimizationError):
            minimize_scalar(quadratic)
        with pytest.raises(OptimizationError):
            minimize_scalar(quadratic, bounds=(0, 1), bracket=(0, 1))

    def test_nfev_accounting(self):
        result = minimize_scalar(quadratic, bracket=(0.0, 1.0))
        assert result.nfev > 3  # includes the bracketing evaluations
