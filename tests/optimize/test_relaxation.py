"""Jin-et-al-style alternating relaxation baseline."""

from __future__ import annotations

import pytest

from repro.core import AmdahlSpeedup, ErrorModel, PatternModel
from repro.core.costs import ResilienceCosts
from repro.exceptions import OptimizationError
from repro.optimize.allocation import optimize_allocation
from repro.optimize.relaxation import relaxation_optimize


class TestRelaxation:
    def test_converges(self, hera_sc1):
        result = relaxation_optimize(hera_sc1)
        assert result.converged
        assert result.iterations < 20

    def test_agrees_with_nested_optimizer(self, hera_sc1):
        relaxed = relaxation_optimize(hera_sc1)
        nested = optimize_allocation(hera_sc1)
        assert relaxed.processors == pytest.approx(nested.processors, rel=1e-2)
        assert relaxed.overhead == pytest.approx(nested.overhead, rel=1e-6)

    def test_agrees_on_constant_costs(self, hera_sc3):
        relaxed = relaxation_optimize(hera_sc3)
        nested = optimize_allocation(hera_sc3)
        assert relaxed.overhead == pytest.approx(nested.overhead, rel=1e-6)

    def test_insensitive_to_start(self, hera_sc1):
        a = relaxation_optimize(hera_sc1, p_start=8.0)
        b = relaxation_optimize(hera_sc1, p_start=100_000.0)
        assert a.processors == pytest.approx(b.processors, rel=1e-3)

    def test_history_recorded(self, hera_sc1):
        result = relaxation_optimize(hera_sc1)
        assert len(result.history) == result.iterations
        # Overheads along the trajectory are non-increasing (fixed-point
        # descent on a unimodal objective).
        overheads = [h for (_, _, h) in result.history]
        assert all(b <= a * (1 + 1e-9) for a, b in zip(overheads, overheads[1:]))

    def test_error_free_raises(self, simple_costs):
        model = PatternModel(
            ErrorModel(lambda_ind=0.0, fail_stop_fraction=0.5),
            simple_costs,
            AmdahlSpeedup(0.1),
        )
        with pytest.raises(OptimizationError):
            relaxation_optimize(model)

    def test_start_outside_range_raises(self, hera_sc1):
        with pytest.raises(OptimizationError):
            relaxation_optimize(hera_sc1, p_start=0.5, p_min=1.0)
