"""Batched optimisers vs their scalar references — bit-level parity.

The batch engine's contract is strict: per column it must reproduce the
scalar search *exactly* (same abscissas, same best-so-far updates, same
break rounds), because the figure goldens are pinned byte-for-byte.
These tests drive randomized valid models through both code paths and
compare every result field with exact float equality, plus the
``{:.6g}`` rendering the table emitters apply.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    AmdahlSpeedup,
    CheckpointCost,
    ErrorModel,
    GustafsonSpeedup,
    PatternModel,
    ResilienceCosts,
    VerificationCost,
)
from repro.optimize.allocation import optimize_allocation, optimize_allocation_batch
from repro.optimize.grid import refine_log_minimum, refine_log_minimum_batch
from repro.optimize.period import (
    optimize_period_batch,
    optimize_period_batch_grouped,
)
from repro.platforms import build_model

FLOATFMT = "{:.6g}"  # the emitters' float rendering (FigureResult.table)


def random_model(rng: np.random.Generator) -> PatternModel:
    """One valid model drawn across the paper's parameter regimes."""
    form = rng.choice(["constant", "linear", "scaling"])
    if form == "constant":
        checkpoint = CheckpointCost.constant(float(rng.uniform(60.0, 600.0)))
    elif form == "linear":
        checkpoint = CheckpointCost.linear(float(rng.uniform(0.1, 2.0)))
    else:
        checkpoint = CheckpointCost.scaling(float(rng.uniform(1e4, 1e6)))
    return PatternModel(
        errors=ErrorModel(
            lambda_ind=float(10.0 ** rng.uniform(-9.0, -5.0)),
            fail_stop_fraction=float(rng.choice([0.25, 0.5, 1.0])),
        ),
        costs=ResilienceCosts(
            checkpoint=checkpoint,
            verification=VerificationCost.constant(float(rng.uniform(5.0, 100.0))),
            downtime=float(rng.uniform(0.0, 7200.0)),
        ),
        speedup=AmdahlSpeedup(float(rng.choice([0.0, 1e-6, 1e-4, 1e-2]))),
    )


def assert_results_identical(batch, scalar):
    """Every AllocationResult field bit-identical (NaN-aware)."""
    assert len(batch) == len(scalar)
    for got, want in zip(batch, scalar):
        for field in (
            "processors",
            "period",
            "overhead",
            "expected_time",
            "nfev",
            "at_lower",
            "at_upper",
        ):
            g, w = getattr(got, field), getattr(want, field)
            if isinstance(w, float) and math.isnan(w):
                assert math.isnan(g), f"{field}: {g!r} != NaN"
            else:
                assert g == w, f"{field}: {g!r} != {w!r}"
        # The emitters render floats through {:.6g}; identical bits
        # imply identical bytes, but assert it anyway as the contract
        # the goldens actually depend on.
        for g, w in zip(
            (got.processors, got.period, got.overhead),
            (want.processors, want.period, want.overhead),
        ):
            assert FLOATFMT.format(g) == FLOATFMT.format(w)


class TestAllocationBatchParity:
    def test_randomized_models_bit_identical(self):
        rng = np.random.default_rng(20160920)  # the paper's conference date
        models = [random_model(rng) for _ in range(24)]
        scalar = [optimize_allocation(m) for m in models]
        batch = optimize_allocation_batch(models)
        assert_results_identical(batch, scalar)

    def test_platform_scenarios_bit_identical(self):
        models = [build_model("Hera", sc) for sc in (1, 2, 3, 4, 5, 6)]
        scalar = [optimize_allocation(m) for m in models]
        batch = optimize_allocation_batch(models)
        assert_results_identical(batch, scalar)

    def test_edge_pinned_brackets(self, hera_sc1, hera_sc3):
        # Hera's interior optimum sits near P ~ 200: a range entirely
        # above it is monotone increasing (lower-pinned), one entirely
        # below it monotone decreasing (upper-pinned).
        scalar = [
            optimize_allocation(hera_sc1, p_min=1e4),
            optimize_allocation(hera_sc3, p_min=1e4),
        ]
        batch = optimize_allocation_batch([hera_sc1, hera_sc3], p_min=1e4)
        assert_results_identical(batch, scalar)
        assert scalar[0].at_lower and scalar[1].at_lower

        scalar = [
            optimize_allocation(hera_sc1, p_max=50.0),
            optimize_allocation(hera_sc3, p_max=50.0),
        ]
        batch = optimize_allocation_batch([hera_sc1, hera_sc3], p_max=50.0)
        assert_results_identical(batch, scalar)
        assert scalar[0].at_upper and scalar[1].at_upper

    def test_mixed_speedup_profiles_fall_back(self, hera_sc1):
        # Heterogeneous profile types cannot stack; the batch entry
        # point must still answer, via per-model scalar solves.
        gustafson = PatternModel(
            errors=hera_sc1.errors, costs=hera_sc1.costs,
            speedup=GustafsonSpeedup(0.1),
        )
        models = [hera_sc1, gustafson]
        scalar = [optimize_allocation(m) for m in models]
        batch = optimize_allocation_batch(models)
        assert_results_identical(batch, scalar)

    def test_single_model_and_empty(self, hera_sc3):
        assert_results_identical(
            optimize_allocation_batch([hera_sc3]),
            [optimize_allocation(hera_sc3)],
        )
        assert optimize_allocation_batch([]) == []

    def test_integer_mode(self):
        rng = np.random.default_rng(7)
        models = [random_model(rng) for _ in range(6)]
        scalar = [optimize_allocation(m, integer=True) for m in models]
        batch = optimize_allocation_batch(models, integer=True)
        assert_results_identical(batch, scalar)
        assert all(r.processors == int(r.processors) for r in batch)


class TestGroupedPeriodBatch:
    def test_matches_per_model_batches(self):
        rng = np.random.default_rng(42)
        models = [random_model(rng) for _ in range(5)]
        sizes = np.array([17, 9, 33, 1, 17])
        Ps = [
            np.logspace(1.0, 4.0 + j, size)
            for j, (size, _) in enumerate(zip(sizes, models))
        ]
        want_T, want_H = [], []
        for model, P in zip(models, Ps):
            T, H = optimize_period_batch(model, P)
            want_T.append(T)
            want_H.append(H)
        got_T, got_H = optimize_period_batch_grouped(
            models, np.concatenate(Ps), sizes
        )
        np.testing.assert_array_equal(got_T, np.concatenate(want_T))
        np.testing.assert_array_equal(got_H, np.concatenate(want_H))

    def test_sizes_must_partition(self, hera_sc1):
        with pytest.raises(Exception):
            optimize_period_batch_grouped(
                [hera_sc1], np.array([100.0, 200.0]), np.array([3])
            )


class TestRefineLogMinimumBatch:
    def test_independent_columns_converge(self):
        targets = np.array([3.0, 50.0, 700.0])

        def objective(xs, idx):
            return (np.log(xs) - np.log(targets[idx])) ** 2

        result = refine_log_minimum_batch(objective, 1.0, np.full(3, 1e4))
        np.testing.assert_allclose(result.x, targets, rtol=1e-8)
        assert result.x.shape == (3,)
        assert np.all(result.nfev > 0)
        assert not result.at_lower.any()
        assert not result.at_upper.any()

    def test_scalar_wrapper_matches_batch(self):
        def f_batch(xs, idx):
            return (np.log(xs) - np.log(50.0)) ** 2

        single = refine_log_minimum(lambda x: (np.log(x) - np.log(50.0)) ** 2, 1.0, 1e4)
        batch = refine_log_minimum_batch(f_batch, 1.0, np.array([1e4]))
        assert single.x == batch.x[0]
        assert single.fun == batch.fun[0]
        assert single.nfev == batch.nfev[0]

    def test_monotone_objectives_flag_bounds(self):
        def objective(xs, idx):
            # column 0 decreasing (upper-pinned), column 1 increasing.
            return np.where(idx == 0, -np.log(xs), np.log(xs))

        result = refine_log_minimum_batch(objective, 1.0, np.array([1e4, 1e4]))
        assert bool(result.at_upper[0]) and not bool(result.at_lower[0])
        assert bool(result.at_lower[1]) and not bool(result.at_upper[1])

    def test_all_infinite_column_keeps_init(self):
        def objective(xs, idx):
            out = np.full_like(xs, np.inf)
            out[:, idx == 1] = (np.log(xs) - np.log(50.0))[:, idx == 1] ** 2
            return out

        result = refine_log_minimum_batch(
            objective, 1.0, np.array([1e4, 1e4]),
            init_x=1.0, require_finite=False,
        )
        # The doomed column stays at its init with an infinite value and
        # must not perturb its healthy neighbour.
        assert result.x[0] == 1.0
        assert math.isinf(result.fun[0])
        np.testing.assert_allclose(result.x[1], 50.0, rtol=1e-8)
