"""Joint (T, P) optimisation — the paper's numerical 'optimal' solution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AmdahlSpeedup, ErrorModel, PatternModel, ResilienceCosts
from repro.core.first_order import optimal_pattern
from repro.exceptions import OptimizationError
from repro.optimize.allocation import optimize_allocation
from repro.optimize.period import optimize_period


class TestOptimizeAllocation:
    def test_interior_optimum_on_hera(self, hera_sc1):
        result = optimize_allocation(hera_sc1)
        assert result.interior
        # Figure 2 (Hera): numerical P* around 200, T* around 6500s.
        assert 150 < result.processors < 300
        assert 5000 < result.period < 8500
        assert 0.105 < result.overhead < 0.115

    def test_is_a_joint_minimum(self, hera_sc1):
        result = optimize_allocation(hera_sc1)
        H = result.overhead
        # Perturb P (re-optimising T) and T (fixed P): both must not improve.
        for factor in (0.9, 1.1):
            assert optimize_period(hera_sc1, result.processors * factor).overhead > H
            assert hera_sc1.overhead(result.period * factor, result.processors) > H

    def test_close_to_theorem2_on_hera(self, hera_sc1):
        fo = optimal_pattern(hera_sc1)
        num = optimize_allocation(hera_sc1)
        assert num.processors == pytest.approx(fo.processors, rel=0.15)
        assert num.overhead == pytest.approx(fo.overhead, rel=0.02)

    def test_close_to_theorem3_on_hera(self, hera_sc3):
        fo = optimal_pattern(hera_sc3)
        num = optimize_allocation(hera_sc3)
        assert num.processors == pytest.approx(fo.processors, rel=0.15)
        assert num.overhead == pytest.approx(fo.overhead, rel=0.02)

    def test_scenario6_numerical_only(self, hera_sc6):
        # Decaying-cost regime: no closed form, but a finite numerical
        # optimum exists (paper Fig. 2, Hera scenario 6 ~ 800).
        result = optimize_allocation(hera_sc6)
        assert result.interior
        assert 500 < result.processors < 1500

    def test_integer_rounding(self, hera_sc1):
        result = optimize_allocation(hera_sc1, integer=True)
        assert result.processors == int(result.processors)
        cont = optimize_allocation(hera_sc1)
        assert abs(result.processors - cont.processors) <= 1.0
        # Rounding costs essentially nothing on a flat optimum.
        assert result.overhead == pytest.approx(cont.overhead, rel=1e-4)

    def test_respects_bounds(self, hera_sc1):
        result = optimize_allocation(hera_sc1, p_min=400.0, p_max=1000.0)
        assert 400.0 <= result.processors <= 1000.0
        assert result.at_lower  # true optimum (~207) is below the range

    def test_perfectly_parallel_scenario1(self, hera_sc1):
        # alpha = 0 with linear costs: finite optimum ~ lambda^-1/2.
        model = hera_sc1.with_alpha(0.0)
        result = optimize_allocation(model)
        assert result.interior
        lam = model.errors.lambda_ind
        assert 0.1 * lam**-0.5 < result.processors < 10 * lam**-0.5

    def test_expected_time_consistent(self, hera_sc3):
        result = optimize_allocation(hera_sc3)
        assert result.expected_time == pytest.approx(
            hera_sc3.expected_time(result.period, result.processors), rel=1e-9
        )

    def test_speedup_property(self, hera_sc1):
        result = optimize_allocation(hera_sc1)
        assert result.speedup == pytest.approx(1.0 / result.overhead)

    def test_error_free_raises(self, simple_costs):
        model = PatternModel(
            ErrorModel(lambda_ind=0.0, fail_stop_fraction=0.5),
            simple_costs,
            AmdahlSpeedup(0.1),
        )
        with pytest.raises(OptimizationError):
            optimize_allocation(model)

    def test_invalid_range_raises(self, hera_sc1):
        with pytest.raises(OptimizationError):
            optimize_allocation(hera_sc1, p_min=100.0, p_max=10.0)

    def test_downtime_shifts_optimum_down(self, hera_sc1):
        # Figure 7: larger D argues for fewer processors.
        low = optimize_allocation(hera_sc1.with_downtime(0.0))
        high = optimize_allocation(hera_sc1.with_downtime(3 * 3600.0))
        assert high.processors < low.processors

    def test_gustafson_profile_supported(self, hera_sc3):
        # The numerical path accepts non-Amdahl profiles (future work).
        from repro.core import GustafsonSpeedup

        model = PatternModel(hera_sc3.errors, hera_sc3.costs, GustafsonSpeedup(0.1))
        result = optimize_allocation(model, p_max=1e7)
        assert result.overhead > 0.0
        assert np.isfinite(result.processors)
