"""Numerical period optimisation against the exact overhead objective."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import optimize as sp_optimize

from repro.core import AmdahlSpeedup, ErrorModel, PatternModel, ResilienceCosts
from repro.core.first_order import optimal_period
from repro.exceptions import OptimizationError
from repro.optimize.period import optimize_period, optimize_period_batch


class TestOptimizePeriod:
    def test_is_a_true_minimum(self, hera_sc1):
        P = 256.0
        result = optimize_period(hera_sc1, P)
        H = result.overhead
        for factor in (0.9, 0.99, 1.01, 1.1):
            assert hera_sc1.overhead(result.period * factor, P) > H

    def test_matches_scipy_bounded(self, hera_sc1):
        P = 256.0
        ours = optimize_period(hera_sc1, P)
        scipy_result = sp_optimize.minimize_scalar(
            lambda T: hera_sc1.overhead(T, P),
            bounds=(10.0, 1e6),
            method="bounded",
            options={"xatol": 1e-8},
        )
        assert ours.period == pytest.approx(scipy_result.x, rel=1e-5)
        assert ours.overhead <= scipy_result.fun * (1 + 1e-12)

    def test_close_to_first_order_in_regime(self, hera_sc3):
        # Within the validity regime the numerical optimum is within a
        # few percent of Theorem 1.
        P = 256.0
        T_fo = optimal_period(P, hera_sc3.errors, hera_sc3.costs)
        result = optimize_period(hera_sc3, P)
        assert result.period == pytest.approx(T_fo, rel=0.1)

    def test_converges_to_first_order_as_lambda_vanishes(self, hera_sc3):
        model = hera_sc3.with_lambda(1e-13)
        P = 256.0
        T_fo = optimal_period(P, model.errors, model.costs)
        result = optimize_period(model, P)
        assert result.period == pytest.approx(T_fo, rel=1e-3)

    def test_expected_time_consistent(self, hera_sc1):
        result = optimize_period(hera_sc1, 256.0)
        assert result.expected_time == pytest.approx(
            hera_sc1.expected_time(result.period, 256.0)
        )

    def test_custom_seed_agrees(self, hera_sc1):
        a = optimize_period(hera_sc1, 256.0)
        b = optimize_period(hera_sc1, 256.0, seed=a.period * 7.0)
        assert a.period == pytest.approx(b.period, rel=1e-6)

    def test_error_free_raises(self, simple_costs):
        model = PatternModel(
            ErrorModel(lambda_ind=0.0, fail_stop_fraction=0.5),
            simple_costs,
            AmdahlSpeedup(0.1),
        )
        with pytest.raises(OptimizationError):
            optimize_period(model, 100.0)

    def test_high_rate_short_period(self):
        # Aggressive error rate: optimum must be much shorter than MTBF.
        model = PatternModel(
            ErrorModel(lambda_ind=1e-4, fail_stop_fraction=0.5),
            ResilienceCosts.simple(checkpoint=10.0, verification=1.0, downtime=5.0),
            AmdahlSpeedup(0.1),
        )
        result = optimize_period(model, 10.0)
        assert 0 < result.period < 1.0 / model.errors.total_rate(10.0)


class TestBatch:
    def test_matches_scalar_solver(self, hera_sc1):
        P = np.array([128.0, 256.0, 512.0, 1024.0])
        T_batch, H_batch = optimize_period_batch(hera_sc1, P)
        for i, p in enumerate(P):
            scalar = optimize_period(hera_sc1, float(p))
            assert T_batch[i] == pytest.approx(scalar.period, rel=1e-6)
            assert H_batch[i] == pytest.approx(scalar.overhead, rel=1e-10)

    def test_shapes(self, hera_sc3):
        P = np.logspace(1, 4, 7)
        T, H = optimize_period_batch(hera_sc3, P)
        assert T.shape == H.shape == (7,)

    def test_monotone_overhead_tail(self, hera_sc1):
        # Past the optimum allocation, min_T H(T, P) increases with P.
        P = np.logspace(3, 5, 10)
        _, H = optimize_period_batch(hera_sc1, P)
        assert np.all(np.diff(H) > 0)

    def test_rejects_empty(self, hera_sc1):
        with pytest.raises(OptimizationError):
            optimize_period_batch(hera_sc1, np.array([]))

    def test_rejects_2d(self, hera_sc1):
        with pytest.raises(OptimizationError):
            optimize_period_batch(hera_sc1, np.ones((2, 2)))

    def test_handles_extreme_processor_counts(self, hera_sc3):
        # Huge P overflows the exponentials in parts (or all) of the T
        # window; the zoom must survive and report +inf, never NaN, so
        # the outer allocation search can discard those regions.
        P = np.array([1e8, 1e10])
        T, H = optimize_period_batch(hera_sc3, P)
        assert np.all(np.isfinite(T))
        assert not np.any(np.isnan(H))
        # At P = 1e8 the overhead is finite (astronomical but representable).
        assert np.isfinite(H[0])
        # At P = 1e10, lambda_f * C ~ 1.1e4 overflows float64: genuinely inf.
        assert H[1] == np.inf


class TestBatchEdgePinnedBracket:
    """Regression: edge-pinned brackets must widen once, then raise.

    The scalar solver has always re-tried a 1e3-widened window when the
    optimum pinned to a bracket edge; the batch solver used to return
    the pinned edge silently.
    """

    def test_tiny_seed_window_recovers_after_widening(self, hera_sc1):
        P = np.array([128.0, 512.0, 1024.0])
        T_ref, H_ref = optimize_period_batch(hera_sc1, P)
        # A 0.01-decade window cannot contain the optimum unless the
        # first-order seed is essentially exact; every column pins and
        # must be recovered by the widened re-zoom.
        T, H = optimize_period_batch(hera_sc1, P, seed_decades=0.01)
        np.testing.assert_allclose(T, T_ref, rtol=1e-5)
        np.testing.assert_allclose(H, H_ref, rtol=1e-9)

    def test_matches_scalar_widening(self, hera_sc1):
        P = np.array([256.0])
        T, H = optimize_period_batch(hera_sc1, P, seed_decades=0.01)
        scalar = optimize_period(hera_sc1, 256.0)
        assert T[0] == pytest.approx(scalar.period, rel=1e-5)
        assert H[0] == pytest.approx(scalar.overhead, rel=1e-9)

    def test_monotone_objective_raises_per_column(self, hera_sc1):
        class MonotoneModel(PatternModel):
            """Strictly decreasing overhead: no interior optimum exists."""

            def overhead(self, T, P):
                return 1.0 + 1.0 / np.asarray(T, dtype=float)

        stub = MonotoneModel(
            errors=hera_sc1.errors, costs=hera_sc1.costs, speedup=hera_sc1.speedup
        )
        with pytest.raises(OptimizationError, match="monotone"):
            optimize_period_batch(stub, np.array([128.0, 512.0]), seed_decades=0.5)

    def test_default_windows_are_never_pinned(self, hera_sc1, hera_sc3):
        # The honest-seed path must be bit-unchanged by the fallback.
        for model in (hera_sc1, hera_sc3):
            P = np.logspace(2, 3.5, 6)
            T, H = optimize_period_batch(model, P)
            T0 = np.asarray(optimal_period(P, model.errors, model.costs))
            assert np.all(T / (T0 * 1e-3) > 1.001)
            assert np.all((T0 * 1e3) / T > 1.001)
