"""Exception hierarchy contracts."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    InvalidParameterError,
    OptimizationError,
    ReproError,
    SimulationError,
    UnknownPlatformError,
    UnknownScenarioError,
    ValidityError,
)


@pytest.mark.parametrize(
    "exc_type",
    [
        InvalidParameterError,
        ValidityError,
        OptimizationError,
        SimulationError,
        UnknownPlatformError,
        UnknownScenarioError,
    ],
)
def test_all_derive_from_repro_error(exc_type):
    assert issubclass(exc_type, ReproError)


def test_invalid_parameter_is_value_error():
    # Callers using plain ValueError handling still catch parameter issues.
    assert issubclass(InvalidParameterError, ValueError)


def test_optimization_error_is_runtime_error():
    assert issubclass(OptimizationError, RuntimeError)


def test_unknown_platform_is_key_error():
    assert issubclass(UnknownPlatformError, KeyError)


def test_catch_all_works():
    with pytest.raises(ReproError):
        raise ValidityError("out of regime")
