"""Every example script must run cleanly end to end (deliverable b).

Each example is executed in a subprocess with the repo's environment;
we assert a zero exit code and sanity-check a line of expected output.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, timeout: float = 300.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "platform_sizing.py",
        "scaling_study.py",
        "silent_error_blindness.py",
        "simulator_tour.py",
        "exascale_projection.py",
        "interleaved_verifications.py",
        "waste_anatomy.py",
    } <= names


def test_quickstart():
    out = _run("quickstart.py")
    assert "Closed form (Theorem 2)" in out
    assert "simulated overhead" in out
    assert "worse than" in out


def test_platform_sizing():
    out = _run("platform_sizing.py")
    for platform in ("Hera", "Atlas", "Coastal", "CoastalSSD"):
        assert f"Platform {platform}" in out
    assert "penalty" in out


def test_scaling_study():
    out = _run("scaling_study.py")
    assert "fitted orders" in out
    assert "lambda^-0.2" in out or "lambda^-0.3" in out


def test_silent_error_blindness():
    out = _run("silent_error_blindness.py")
    assert "penalty" in out
    assert "Hera" in out


def test_simulator_tour():
    out = _run("simulator_tour.py")
    assert "Activity breakdown" in out
    assert "useful" in out


def test_exascale_projection():
    out = _run("exascale_projection.py")
    assert "Platform MTBF at P = 100k" in out
    assert "Joint optimum" in out


def test_interleaved_verifications():
    out = _run("interleaved_verifications.py")
    assert "best k" in out
    assert "simulated" in out


def test_waste_anatomy():
    out = _run("waste_anatomy.py")
    assert "waste channels" in out
    assert "simulated relative waste" in out
