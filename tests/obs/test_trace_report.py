"""Trace analysis on synthetic event streams: summarize and render."""

from __future__ import annotations

import json

import pytest

from repro.obs.report import SUMMARY_SCHEMA, render_summary_text, render_timeline, summarize


def _events():
    """A hand-built two-study trace: spans, jobs, cache traffic, points."""
    return [
        {"ev": "trace_start", "t": 0.0, "format": 1, "pid": 1, "argv": ["fig5"]},
        {"ev": "span_begin", "t": 0.0, "name": "declare", "sid": 1,
         "study": "fig5"},
        {"ev": "span_end", "t": 0.1, "name": "declare", "sid": 1,
         "study": "fig5", "dur": 0.1},
        {"ev": "schedule", "t": 0.1, "jobs": 2, "max_inflight": 2, "workers": 2},
        {"ev": "span_begin", "t": 0.1, "name": "execute", "sid": 2, "round": 1},
        {"ev": "cache_miss", "t": 0.11, "key": "k1"},
        {"ev": "cache_hit", "t": 0.12, "key": "k2"},
        {"ev": "job_submit", "t": 0.15, "job": "1.0", "attempt": 1},
        {"ev": "job_submit", "t": 0.15, "job": "1.1", "attempt": 1},
        {"ev": "job_complete", "t": 0.35, "job": "1.0", "dur": 0.2,
         "worker": 11},
        {"ev": "job_complete", "t": 0.55, "job": "1.1", "dur": 0.4,
         "worker": 12},
        {"ev": "cache_store", "t": 0.56, "key": "k1", "kind": "value"},
        {"ev": "point", "t": 0.6, "study": "fig5", "status": "computed",
         "key": "k1"},
        {"ev": "point", "t": 0.61, "study": "fig5", "status": "served",
         "key": "k2"},
        {"ev": "point", "t": 0.62, "study": None, "status": "skipped",
         "key": None},
        {"ev": "analytic_batch", "t": 0.63, "study": "fig5", "evaluated": 3,
         "served": 1},
        {"ev": "emit", "t": 0.7, "study": "fig5", "tables": 1},
        {"ev": "trace_end", "t": 0.8, "status": "complete"},
    ]


class TestSummarize:
    def test_schema_and_wall(self):
        summary = summarize(_events())
        assert summary["schema"] == SUMMARY_SCHEMA
        assert summary["events"] == len(_events())
        assert summary["wall_seconds"] == pytest.approx(0.8)

    def test_phases_sum_span_durations(self):
        phases = summarize(_events())["phases"]
        assert phases["declare"] == {"count": 1, "seconds": 0.1}
        assert "execute" not in phases  # unterminated span: no end event

    def test_studies_tally_per_declaration(self):
        studies = summarize(_events())["studies"]
        assert studies["fig5"] == {
            "computed": 1, "served": 1, "skipped": 0, "points": 2,
        }
        assert studies["(ungrouped)"]["skipped"] == 1

    def test_fates_count_unique_keys_last_wins(self):
        events = _events() + [
            {"ev": "point", "t": 0.65, "study": "fig5", "status": "served",
             "key": "k1"},  # k1 delivered again: last event wins
        ]
        fates = summarize(events)["fates"]
        assert fates == {"computed": 0, "served": 2, "skipped": 0}

    def test_scheduler_occupancy(self):
        sched = summarize(_events())["scheduler"]
        assert sched["jobs"] == 2
        assert sched["max_inflight"] == 2
        # Two jobs submitted at 0.15, done at 0.35 / 0.55: busy 0.6 over
        # a 0.4 span -> mean in-flight 1.5, occupancy 0.75 of window 2.
        assert sched["span_seconds"] == pytest.approx(0.4)
        assert sched["busy_seconds"] == pytest.approx(0.6)
        assert sched["mean_inflight"] == pytest.approx(1.5)
        assert sched["occupancy"] == pytest.approx(0.75)

    def test_worker_utilization(self):
        workers = summarize(_events())["workers"]
        assert workers["11"]["jobs"] == 1
        assert workers["11"]["busy_seconds"] == pytest.approx(0.2)
        assert workers["12"]["utilization"] == pytest.approx(1.0)

    def test_cache_and_analytic_rates(self):
        summary = summarize(_events())
        assert summary["cache"] == {
            "hit": 1, "miss": 1, "store": 1, "hit_rate": 0.5,
        }
        assert summary["analytic"]["evaluated"] == 3
        assert summary["analytic"]["hit_rate"] == pytest.approx(0.25)

    def test_critical_path_ranks_by_extent(self):
        critical = summarize(_events())["critical_path"]
        assert critical[0]["study"] == "fig5"
        # First declare at t=0, last point at t=0.61.
        assert critical[0]["seconds"] == pytest.approx(0.61)

    def test_adaptive_waves(self):
        events = _events() + [
            {"ev": "wave_stage", "t": 0.2, "family": "f", "wave": 0,
             "start": 0, "stop": 3},
            {"ev": "wave_stage", "t": 0.4, "family": "f", "wave": 1,
             "start": 3, "stop": 5},
            {"ev": "wave_converge", "t": 0.5, "family": "f", "wave": 1,
             "converged": 4, "active": 2, "rows_converged": 4},
        ]
        adaptive = summarize(events)["adaptive"]
        assert adaptive["f"] == {"waves": 2, "rows_converged": 4}

    def test_empty_trace(self):
        summary = summarize([])
        assert summary["events"] == 0
        assert summary["scheduler"]["occupancy"] is None
        assert summary["cache"]["hit_rate"] is None

    def test_summary_is_json_serialisable(self):
        summary = summarize(_events())
        assert json.loads(json.dumps(summary)) == summary


class TestRender:
    def test_text_sections_present(self):
        lines = render_summary_text(summarize(_events()))
        text = "\n".join(lines)
        for section in ("[trace]", "[phases]", "[scheduler]", "[workers]",
                        "[studies]", "[fates]", "[cache]", "[analytic]",
                        "[critical-path]"):
            assert section in text
        assert "occupancy 75% of window 2" in text

    def test_timeline_excludes_volatile_fields(self):
        lines = render_timeline(_events())
        assert len(lines) == len(_events())
        complete = next(line for line in lines if "job_complete" in line)
        assert "dur=" not in complete and "worker=" not in complete
        assert "job=1.0" in complete

    def test_timeline_limit_tail(self):
        lines = render_timeline(_events(), limit=3)
        assert len(lines) == 4
        assert lines[-1] == f"... {len(_events()) - 3} more events"
