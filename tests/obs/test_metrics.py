"""The metrics registry: kinds, labels, snapshot stability."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ReproError
from repro.obs.metrics import METRICS_SCHEMA, Histogram, MetricsRegistry


class TestKinds:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        reg.counter("points").inc()
        reg.counter("points").inc(3)
        assert reg.value("points") == 4

    def test_gauge_set_and_high_water(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("inflight")
        gauge.set(3)
        gauge.update_max(7)
        gauge.update_max(2)  # below the high-water mark: ignored
        assert reg.value("inflight") == 7

    def test_histogram_summary_stats(self):
        hist = Histogram()
        for value in (2.0, 4.0, 6.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.min == 2.0
        assert hist.max == 6.0
        assert hist.mean == pytest.approx(4.0)
        assert hist.to_value()["total"] == pytest.approx(12.0)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ReproError, match="already registered as counter"):
            reg.gauge("x")


class TestLabels:
    def test_same_labels_same_metric(self):
        reg = MetricsRegistry()
        reg.counter("points", study="fig5", status="computed").inc()
        reg.counter("points", status="computed", study="fig5").inc()
        assert reg.value("points", study="fig5", status="computed") == 2

    def test_different_labels_different_metrics(self):
        reg = MetricsRegistry()
        reg.counter("points", status="computed").inc()
        reg.counter("points", status="served").inc(2)
        assert reg.value("points", status="computed") == 1
        assert reg.value("points", status="served") == 2

    def test_value_defaults_to_zero(self):
        assert MetricsRegistry().value("never", anywhere="x") == 0

    def test_labeled_preserves_insertion_order(self):
        reg = MetricsRegistry()
        for study in ("fig5", "fig2", "fig6"):
            reg.counter("plan", study=study).inc()
        assert [labels["study"] for labels, _ in reg.labeled("plan")] == [
            "fig5", "fig2", "fig6",
        ]

    def test_clear_drops_only_that_name(self):
        reg = MetricsRegistry()
        reg.counter("plan", study="a").inc()
        reg.counter("points", study="a").inc()
        reg.clear("plan")
        assert reg.labeled("plan") == []
        assert reg.value("points", study="a") == 1


class TestSnapshot:
    def test_snapshot_is_sorted_and_json_stable(self):
        reg = MetricsRegistry()
        reg.counter("z_last", status="x").inc()
        reg.counter("a_first").inc(2)
        reg.gauge("mid").set(5)
        snap = reg.snapshot()
        assert snap["schema"] == METRICS_SCHEMA
        names = [row["name"] for row in snap["metrics"]]
        assert names == sorted(names)
        # Round-trips through JSON without loss.
        assert json.loads(json.dumps(snap)) == snap

    def test_snapshot_independent_of_insertion_order(self):
        one, two = MetricsRegistry(), MetricsRegistry()
        one.counter("a").inc()
        one.gauge("b", k="v").set(3)
        two.gauge("b", k="v").set(3)
        two.counter("a").inc()
        assert one.snapshot() == two.snapshot()

    def test_len_counts_metrics(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.counter("a", l="1")
        assert len(reg) == 2
