"""The trace writer and schema: journaling, validation, null writer."""

from __future__ import annotations

import json
import threading

import pytest

from repro.exceptions import ReproError
from repro.obs.trace import (
    ENVIRONMENT_EVENTS,
    EVENT_FIELDS,
    NULL_TRACE,
    TRACE_FORMAT,
    TraceWriter,
    comparable_events,
    iter_trace,
    load_trace,
    validate_event,
)


@pytest.fixture
def trace_path(tmp_path):
    return tmp_path / "trace.jsonl"


class TestWriter:
    def test_header_and_end(self, trace_path):
        writer = TraceWriter(trace_path, argv=["fig5", "--trace"], run_id="r1",
                             command="fig5")
        writer.close()
        events = load_trace(trace_path)
        assert events[0]["ev"] == "trace_start"
        assert events[0]["format"] == TRACE_FORMAT
        assert events[0]["argv"] == ["fig5", "--trace"]
        assert events[0]["run_id"] == "r1"
        assert events[-1] == {
            "ev": "trace_end", "status": "complete", "t": events[-1]["t"],
        }

    def test_events_validate_and_timestamps_monotonic(self, trace_path):
        writer = TraceWriter(trace_path)
        writer.event("cache_miss", key="k1")
        writer.event("point", study="fig5", status="computed", key="k1")
        writer.close()
        events = load_trace(trace_path)  # validate=True: schema-checks all
        stamps = [event["t"] for event in events]
        assert stamps == sorted(stamps)

    def test_span_pairs_share_sid_and_carry_extras(self, trace_path):
        writer = TraceWriter(trace_path)
        with writer.span("declare", study="fig5") as extra:
            extra["points"] = 54
        writer.close()
        begin, end = [e for e in load_trace(trace_path)
                      if e["ev"].startswith("span_")]
        assert begin["sid"] == end["sid"]
        assert begin["study"] == end["study"] == "fig5"
        assert end["points"] == 54
        assert end["dur"] >= 0

    def test_extra_overrides_begin_field(self, trace_path):
        writer = TraceWriter(trace_path)
        with writer.span("declare", study="before") as extra:
            extra["study"] = "after"
        writer.close()
        end = [e for e in load_trace(trace_path) if e["ev"] == "span_end"][0]
        assert end["study"] == "after"

    def test_close_is_idempotent_and_seals(self, trace_path):
        writer = TraceWriter(trace_path)
        writer.close()
        writer.close()
        writer.event("cache_miss", key="ignored")  # after close: dropped
        events = load_trace(trace_path)
        assert [e["ev"] for e in events] == ["trace_start", "trace_end"]

    def test_concurrent_events_never_tear_lines(self, trace_path):
        writer = TraceWriter(trace_path)

        def hammer(n):
            for i in range(50):
                writer.event("cache_miss", key=f"{n}-{i}")

        threads = [threading.Thread(target=hammer, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        writer.close()
        events = load_trace(trace_path)  # any torn line fails JSON parsing
        assert sum(1 for e in events if e["ev"] == "cache_miss") == 200


class TestNullWriter:
    def test_disabled_and_inert(self):
        assert NULL_TRACE.enabled is False
        NULL_TRACE.event("point", study="x", status="computed", key="k")
        with NULL_TRACE.span("declare") as extra:
            extra["points"] = 1
        NULL_TRACE.close()
        assert NULL_TRACE.events_written == 0


class TestValidation:
    def test_unknown_event_rejected(self):
        with pytest.raises(ReproError, match="unknown trace event"):
            validate_event({"ev": "nope", "t": 0.0})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ReproError, match="missing required"):
            validate_event({"ev": "point", "t": 0.0, "study": "fig5"})

    def test_undeclared_field_rejected(self):
        with pytest.raises(ReproError, match="undeclared fields"):
            validate_event(
                {"ev": "cache_hit", "t": 0.0, "key": "k", "extra": 1}
            )

    def test_missing_timestamp_rejected(self):
        with pytest.raises(ReproError, match="numeric timestamp"):
            validate_event({"ev": "cache_hit", "key": "k"})

    def test_every_declared_event_minimally_validates(self):
        samples = {
            "format": 1, "pid": 1, "argv": [], "status": "ok", "metrics": {},
            "name": "declare", "sid": 1, "dur": 0.1, "round": 1, "points": 1,
            "unique": 1, "jobs": 1, "study": "s", "key": "k", "max_inflight": 1,
            "workers": 1, "job": "1.0", "attempt": 1, "error": "E", "kind": "v",
            "count": 1, "evaluated": 1, "served": 1, "family": "f", "wave": 0,
            "start": 0, "stop": 1, "converged": 0, "active": 1,
            "rows_converged": 0, "tables": 1, "reused": 0, "invalidated": 0,
            "missing": 0, "stale": 0,
        }
        for ev, (required, _) in EVENT_FIELDS.items():
            event = {"ev": ev, "t": 0.0}
            event.update({field: samples[field] for field in required})
            validate_event(event)

    def test_iter_trace_reports_bad_line_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev":"trace_start","t":0,"format":1,"pid":1,"argv":[]}\n'
                        "not json\n")
        with pytest.raises(ReproError, match="bad.jsonl:2"):
            list(iter_trace(path))

    def test_iter_trace_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="no trace at"):
            list(iter_trace(tmp_path / "absent.jsonl"))


class TestComparable:
    def test_strips_volatile_and_environment(self):
        events = [
            {"ev": "trace_start", "t": 0.0, "format": 1, "pid": 9, "argv": []},
            {"ev": "schedule", "t": 0.1, "jobs": 4, "max_inflight": 8,
             "workers": 2},
            {"ev": "job_complete", "t": 0.2, "job": "1.0", "dur": 0.05,
             "worker": 1234},
            {"ev": "point", "t": 0.3, "study": "fig5", "status": "computed",
             "key": "k"},
        ]
        core = comparable_events(events)
        assert core == [
            {"ev": "job_complete", "job": "1.0"},
            {"ev": "point", "study": "fig5", "status": "computed", "key": "k"},
        ]

    def test_custom_drop_set(self):
        events = [{"ev": "emit", "t": 1.0, "study": "s", "tables": 2}]
        assert comparable_events(events, drop=ENVIRONMENT_EVENTS | {"emit"}) == []

    def test_round_trip_stays_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceWriter(path)
        writer.event("cache_store", key="k", kind="value")
        writer.close()
        core = comparable_events(load_trace(path))
        assert json.loads(json.dumps(core)) == core
