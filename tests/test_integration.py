"""End-to-end integration tests reproducing the paper's headline claims.

Each test runs the full pipeline — platform catalog → scenario
projection → optimisation → simulation — and asserts the quantitative
*shape* results recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    build_model,
    optimal_pattern,
    optimize_allocation,
    simulate_overhead,
)
from repro.analysis.asymptotics import fit_loglog_slope
from repro.core import check_pattern


class TestHeadlineOrders:
    """'A striking result': P* ~ lambda^-1/4 (linear C) vs lambda^-1/3 (bounded)."""

    def test_quarter_order_for_linear_checkpoint_cost(self):
        lams = np.logspace(-12, -8, 7)
        P_num = [
            optimize_allocation(build_model("Hera", 1, lambda_ind=float(l))).processors
            for l in lams
        ]
        fit = fit_loglog_slope(lams, P_num)
        assert fit.matches(-0.25, tol=0.02)
        assert fit.r_squared > 0.999

    def test_third_order_for_bounded_checkpoint_cost(self):
        lams = np.logspace(-12, -8, 7)
        P_num = [
            optimize_allocation(build_model("Hera", 3, lambda_ind=float(l))).processors
            for l in lams
        ]
        fit = fit_loglog_slope(lams, P_num)
        assert fit.matches(-1.0 / 3.0, tol=0.02)

    def test_period_orders(self):
        lams = np.logspace(-12, -8, 7)
        T1 = [
            optimize_allocation(build_model("Hera", 1, lambda_ind=float(l))).period
            for l in lams
        ]
        T3 = [
            optimize_allocation(build_model("Hera", 3, lambda_ind=float(l))).period
            for l in lams
        ]
        assert fit_loglog_slope(lams, T1).matches(-0.5, tol=0.02)
        assert fit_loglog_slope(lams, T3).matches(-1.0 / 3.0, tol=0.02)


class TestFiniteOptimum:
    """The paper's core message: on failure-prone platforms P* is finite."""

    @pytest.mark.parametrize("platform", ["Hera", "Atlas", "Coastal", "CoastalSSD"])
    def test_finite_interior_optimum_everywhere(self, platform):
        for scenario in (1, 3):
            result = optimize_allocation(build_model(platform, scenario))
            assert result.interior
            assert 1.0 < result.processors < 1e7

    def test_overhead_beyond_optimum_degrades(self):
        model = build_model("Hera", 1)
        opt = optimize_allocation(model)
        from repro.optimize import optimize_period

        # 10x over-enrollment visibly hurts.
        over = optimize_period(model, opt.processors * 10.0)
        assert over.overhead > opt.overhead * 1.05


class TestFirstOrderAccuracy:
    """First-order formulas vs the exact optimum (Figure 2/3 claims)."""

    @pytest.mark.parametrize("platform", ["Hera", "Atlas", "Coastal", "CoastalSSD"])
    @pytest.mark.parametrize("scenario", [1, 2, 3, 4])
    def test_prediction_gap_small(self, platform, scenario):
        model = build_model(platform, scenario)
        fo = optimal_pattern(model)
        num = optimize_allocation(model)
        # Overhead of deploying the first-order pattern vs the true optimum:
        # < 1% everywhere except CoastalSSD/scenario 2 (the most expensive
        # costs of Table II push the truncation error to ~1.9%).
        H_fo = float(model.overhead(fo.period, fo.processors))
        bound = 0.02 if (platform, scenario) == ("CoastalSSD", 2) else 0.01
        assert (H_fo - num.overhead) / num.overhead < bound

    def test_scenario5_gap_larger_but_bounded(self):
        # Paper: scenario 5's first-order solution costs up to ~5% more.
        model = build_model("Hera", 5)
        fo = optimal_pattern(model)
        num = optimize_allocation(model)
        H_fo = float(model.overhead(fo.period, fo.processors))
        gap = (H_fo - num.overhead) / num.overhead
        assert 0.005 < gap < 0.2

    def test_first_order_solutions_are_in_validity_regime(self):
        for scenario in (1, 2, 3, 4):
            model = build_model("Hera", scenario)
            sol = optimal_pattern(model)
            assert check_pattern(sol.period, sol.processors, model).ok


class TestSimulationClosesTheLoop:
    """Monte Carlo at the optimal pattern reproduces the predicted overhead."""

    @pytest.mark.parametrize("scenario", [1, 3])
    def test_simulated_overhead_matches_prediction(self, scenario):
        model = build_model("Hera", scenario)
        num = optimize_allocation(model)
        est = simulate_overhead(
            model, num.period, num.processors, n_runs=200, n_patterns=200, seed=13
        )
        assert abs(est.mean - num.overhead) / num.overhead < 0.01

    def test_overhead_near_011_at_alpha_01(self):
        # Figure 2: overheads ~ 0.11 across scenarios at alpha = 0.1.
        for scenario in (1, 2, 3, 4, 5, 6):
            model = build_model("Hera", scenario)
            num = optimize_allocation(model)
            assert 0.10 < num.overhead < 0.12


class TestAmdahlMeetsYoungDaly:
    """The synthesis the title promises: both laws bind simultaneously."""

    def test_overhead_floor_is_amdahl(self):
        model = build_model("Hera", 1)
        num = optimize_allocation(model)
        # Resilient overhead sits above the Amdahl floor alpha = 0.1...
        assert num.overhead > 0.1
        # ...but within 15% of it at these (reliable) rates.
        assert num.overhead < 0.115

    def test_young_daly_scaling_of_period(self):
        # For fixed P, quadrupling the rate halves the optimal period.
        from repro.optimize import optimize_period

        base = build_model("Hera", 3)
        hot = build_model("Hera", 3, lambda_ind=4 * 1.69e-8)
        P = 256.0
        assert optimize_period(hot, P).period == pytest.approx(
            optimize_period(base, P).period / 2.0, rel=0.02
        )

    def test_reliable_platform_approaches_error_free(self):
        model = build_model("Hera", 1, lambda_ind=1e-14)
        num = optimize_allocation(model)
        # Amdahl's limit: with alpha = 0.1 the best overhead is 0.1.
        assert num.overhead == pytest.approx(0.1, abs=2e-3)
