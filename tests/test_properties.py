"""Property-based tests (hypothesis) on the core invariants.

These sweep randomly over the whole parameter domain — error rates,
fail-stop fractions, cost shapes, sequential fractions — and assert the
structural properties the analysis relies on: positivity, limits,
monotonicity, optimality of the closed forms, and agreement between the
exact formula and the Monte-Carlo sampler.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    AmdahlSpeedup,
    CheckpointCost,
    ErrorModel,
    PatternModel,
    ResilienceCosts,
    VerificationCost,
    expected_pattern_time,
    optimal_period,
    theorem2_solution,
    theorem3_solution,
)
from repro.core.errors import expected_time_lost
from repro.optimize.scalar import brent
from repro.sim.batch import simulate_batch, truncated_exponential
from repro.sim.rng import make_rng

# -- strategies ----------------------------------------------------------

rates = st.floats(min_value=1e-12, max_value=1e-4)
fractions = st.floats(min_value=0.0, max_value=1.0)
interior_alphas = st.floats(min_value=1e-4, max_value=0.9)
periods = st.floats(min_value=1.0, max_value=1e6)
processor_counts = st.floats(min_value=1.0, max_value=1e5)
cost_values = st.floats(min_value=0.0, max_value=1e4)
positive_costs = st.floats(min_value=0.1, max_value=1e4)


@st.composite
def error_models(draw) -> ErrorModel:
    return ErrorModel(
        lambda_ind=draw(rates), fail_stop_fraction=draw(fractions)
    )


@st.composite
def cost_bundles(draw) -> ResilienceCosts:
    return ResilienceCosts(
        checkpoint=CheckpointCost(
            a=draw(cost_values), b=draw(cost_values), c=draw(st.floats(0.0, 10.0))
        ),
        verification=VerificationCost(v=draw(cost_values), u=draw(cost_values)),
        downtime=draw(st.floats(0.0, 1e4)),
    )


# -- expected pattern time -------------------------------------------------


class TestPatternTimeProperties:
    @given(errors=error_models(), costs=cost_bundles(), T=periods, P=processor_counts)
    @settings(max_examples=200, deadline=None)
    def test_at_least_error_free_time(self, errors, costs, T, P):
        E = expected_pattern_time(T, P, errors, costs)
        base = T + costs.combined_cost(P)
        if np.isfinite(E):
            assert E >= base * (1 - 1e-9)

    @given(errors=error_models(), costs=cost_bundles(), T=periods, P=processor_counts)
    @settings(max_examples=200, deadline=None)
    def test_positive_and_not_nan(self, errors, costs, T, P):
        E = expected_pattern_time(T, P, errors, costs)
        assert not np.isnan(E)
        assert E > 0.0

    @given(errors=error_models(), costs=cost_bundles(), T=periods, P=processor_counts)
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_period(self, errors, costs, T, P):
        E1 = expected_pattern_time(T, P, errors, costs)
        E2 = expected_pattern_time(T * 1.5, P, errors, costs)
        if np.isfinite(E1) and np.isfinite(E2):
            assert E2 >= E1

    @given(errors=error_models(), costs=cost_bundles(), T=periods, P=processor_counts)
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_rate(self, errors, costs, T, P):
        hotter = ErrorModel(errors.lambda_ind * 3.0, errors.fail_stop_fraction)
        E1 = expected_pattern_time(T, P, errors, costs)
        E2 = expected_pattern_time(T, P, hotter, costs)
        if np.isfinite(E1) and np.isfinite(E2):
            assert E2 >= E1 * (1 - 1e-12)

    @given(errors=error_models(), costs=cost_bundles(), T=periods, P=processor_counts)
    @settings(max_examples=100, deadline=None)
    def test_decomposition(self, errors, costs, T, P):
        from repro.core import expected_checkpoint_time, expected_work_time

        E = expected_pattern_time(T, P, errors, costs)
        EA = expected_work_time(T, P, errors, costs)
        EC = expected_checkpoint_time(T, P, errors, costs)
        if np.isfinite(E):
            assert E == pytest.approx(EA + EC, rel=1e-9)

    @given(T=periods, P=processor_counts, costs=cost_bundles())
    @settings(max_examples=50, deadline=None)
    def test_error_free_limit(self, T, P, costs):
        errors = ErrorModel(lambda_ind=0.0, fail_stop_fraction=0.5)
        E = expected_pattern_time(T, P, errors, costs)
        assert E == pytest.approx(T + costs.combined_cost(P), rel=1e-12)


class TestExpectedTimeLostProperties:
    @given(
        lam=st.floats(min_value=1e-12, max_value=10.0),
        W=st.floats(min_value=1e-3, max_value=1e6),
    )
    @settings(max_examples=200, deadline=None)
    def test_bounded_by_half_window(self, lam, W):
        val = expected_time_lost(lam, W)
        assert 0.0 < val <= W / 2 * (1 + 1e-9)

    @given(
        lam=st.floats(min_value=1e-9, max_value=1.0),
        W=st.floats(min_value=1e-3, max_value=1e4),
    )
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_mean(self, lam, W):
        # Conditioning on striking early can only shorten the wait.
        assert expected_time_lost(lam, W) <= 1.0 / lam


# -- first-order optima ------------------------------------------------------


class TestTheoremProperties:
    @given(
        lam=rates,
        f=fractions,
        alpha=interior_alphas,
        c=st.floats(min_value=1e-3, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_theorem2_minimises_its_objective(self, lam, f, alpha, c):
        model = PatternModel(
            errors=ErrorModel(lam, f),
            costs=ResilienceCosts(checkpoint=CheckpointCost.linear(c)),
            speedup=AmdahlSpeedup(alpha),
        )
        sol = theorem2_solution(model)
        L = model.errors.effective_lambda

        def H(P):
            return alpha + 2 * alpha * P * np.sqrt(c * L) + (1 - alpha) / P

        assert sol.processors > 0
        assert H(sol.processors) <= H(sol.processors * 1.05) + 1e-15
        assert H(sol.processors) <= H(sol.processors * 0.95) + 1e-15
        assert sol.overhead == pytest.approx(H(sol.processors), rel=1e-9)

    @given(
        lam=rates,
        f=fractions,
        alpha=interior_alphas,
        d=positive_costs,
    )
    @settings(max_examples=100, deadline=None)
    def test_theorem3_minimises_its_objective(self, lam, f, alpha, d):
        model = PatternModel(
            errors=ErrorModel(lam, f),
            costs=ResilienceCosts(checkpoint=CheckpointCost.constant(d)),
            speedup=AmdahlSpeedup(alpha),
        )
        sol = theorem3_solution(model)
        L = model.errors.effective_lambda

        def H(P):
            return alpha + 2 * alpha * np.sqrt(d * L * P) + (1 - alpha) / P

        assert H(sol.processors) <= H(sol.processors * 1.05) + 1e-15
        assert H(sol.processors) <= H(sol.processors * 0.95) + 1e-15
        assert sol.overhead == pytest.approx(H(sol.processors), rel=1e-9)

    @given(errors=error_models(), costs=cost_bundles(), P=processor_counts)
    @settings(max_examples=100, deadline=None)
    def test_theorem1_positive(self, errors, costs, P):
        if errors.lambda_ind == 0.0 or costs.combined_cost(P) == 0.0:
            return
        T = optimal_period(P, errors, costs)
        assert T > 0.0

    @given(errors=error_models(), costs=cost_bundles(), P=processor_counts)
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
    def test_theorem1_near_optimal_when_valid(self, errors, costs, P):
        # Inside the validity regime, Theorem 1 beats any 2x mis-sizing.
        combined = costs.combined_cost(P)
        lam_eff = errors.fail_stop_rate(P) / 2.0 + errors.silent_rate(P)
        if combined <= 0.0 or lam_eff <= 0.0:
            return
        if lam_eff * np.sqrt(combined / lam_eff) > 0.05:  # outside regime
            return
        model = PatternModel(errors, costs, AmdahlSpeedup(0.1))
        T_star = optimal_period(P, errors, costs)
        H_star = model.overhead(T_star, P)
        assert H_star <= model.overhead(T_star * 2.0, P) * (1 + 1e-9)
        assert H_star <= model.overhead(T_star * 0.5, P) * (1 + 1e-9)


# -- simulation vs analysis ----------------------------------------------------


class TestSimulationProperties:
    @given(
        lam=st.floats(min_value=1e-5, max_value=1e-4),
        f=fractions,
        T=st.floats(min_value=500.0, max_value=5000.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_batch_mean_tracks_proposition1(self, lam, f, T, seed):
        # The rate/period floor keeps expected failures per batch >= ~100
        # so the sample SEM is a meaningful scale (rare-event batches
        # with ~0 failures make the empirical SEM collapse to zero).
        model = PatternModel(
            errors=ErrorModel(lam, f),
            costs=ResilienceCosts.simple(checkpoint=30.0, verification=5.0, downtime=10.0),
            speedup=AmdahlSpeedup(0.1),
        )
        P = 20.0
        stats = simulate_batch(model, T, P, n_runs=200, n_patterns=50, rng=make_rng(seed))
        analytic = model.expected_time(T, P)
        per_run = stats.run_times / stats.n_patterns
        sem = per_run.std(ddof=1) / np.sqrt(stats.n_runs)
        # 6-sigma with a relative floor: fails w.p. ~1e-9 if unbiased.
        assert abs(stats.mean_pattern_time - analytic) <= 6 * max(sem, 1e-5 * analytic)

    @given(
        lam=st.floats(min_value=1e-6, max_value=1e-2),
        W=st.floats(min_value=1.0, max_value=1e4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_truncated_exponential_support(self, lam, W, seed):
        samples = truncated_exponential(make_rng(seed), lam, W, 1000)
        assert np.all(samples >= 0.0)
        assert np.all(samples <= W)


# -- scalar optimiser ---------------------------------------------------------


class TestOptimizerProperties:
    @given(
        centre=st.floats(min_value=-100.0, max_value=100.0),
        scale=st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_brent_finds_quadratic_minimum(self, centre, scale):
        result = brent(lambda x: scale * (x - centre) ** 2, centre - 50.0, centre + 57.0)
        assert result.x == pytest.approx(centre, abs=1e-5)
