"""Shared fixtures: representative models at several parameter scales."""

from __future__ import annotations

import pytest

from repro.core import (
    AmdahlSpeedup,
    CheckpointCost,
    ErrorModel,
    PatternModel,
    ResilienceCosts,
    VerificationCost,
)
from repro.platforms import build_model


@pytest.fixture
def simple_errors() -> ErrorModel:
    """A mid-scale error model: MTBF ~11.6 days/processor, half fail-stop."""
    return ErrorModel(lambda_ind=1e-6, fail_stop_fraction=0.5)


@pytest.fixture
def simple_costs() -> ResilienceCosts:
    """Constant costs: C=R=60s, V=10s, D=120s (textbook Young/Daly shape)."""
    return ResilienceCosts.simple(checkpoint=60.0, verification=10.0, downtime=120.0)


@pytest.fixture
def simple_model(simple_errors, simple_costs) -> PatternModel:
    """Amdahl alpha=0.1 application on the simple platform."""
    return PatternModel(errors=simple_errors, costs=simple_costs, speedup=AmdahlSpeedup(0.1))


@pytest.fixture
def linear_cost_model() -> PatternModel:
    """Theorem-2 regime: checkpoint cost grows linearly with P."""
    return PatternModel(
        errors=ErrorModel(lambda_ind=1e-8, fail_stop_fraction=0.25),
        costs=ResilienceCosts(
            checkpoint=CheckpointCost.linear(0.5),
            verification=VerificationCost.constant(15.0),
            downtime=3600.0,
        ),
        speedup=AmdahlSpeedup(0.1),
    )


@pytest.fixture
def constant_cost_model() -> PatternModel:
    """Theorem-3 regime: bounded combined cost."""
    return PatternModel(
        errors=ErrorModel(lambda_ind=1e-8, fail_stop_fraction=0.25),
        costs=ResilienceCosts(
            checkpoint=CheckpointCost.constant(300.0),
            verification=VerificationCost.constant(15.0),
            downtime=3600.0,
        ),
        speedup=AmdahlSpeedup(0.1),
    )


@pytest.fixture
def decaying_cost_model() -> PatternModel:
    """Case-3 regime: combined cost decays as h/P."""
    return PatternModel(
        errors=ErrorModel(lambda_ind=1e-8, fail_stop_fraction=0.25),
        costs=ResilienceCosts(
            checkpoint=CheckpointCost.scaling(300.0 * 512),
            verification=VerificationCost.scaling(15.0 * 512),
            downtime=3600.0,
        ),
        speedup=AmdahlSpeedup(0.1),
    )


@pytest.fixture
def hera_sc1() -> PatternModel:
    """Hera platform under scenario 1 (the paper's headline configuration)."""
    return build_model("Hera", 1)


@pytest.fixture
def hera_sc3() -> PatternModel:
    return build_model("Hera", 3)


@pytest.fixture
def hera_sc5() -> PatternModel:
    return build_model("Hera", 5)


@pytest.fixture
def hera_sc6() -> PatternModel:
    return build_model("Hera", 6)
