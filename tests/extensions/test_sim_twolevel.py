"""Segmented-pattern Monte Carlo vs the exact expectation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AmdahlSpeedup, ErrorModel, PatternModel, ResilienceCosts
from repro.exceptions import SimulationError
from repro.extensions.sim_twolevel import simulate_segmented_batch
from repro.extensions.twolevel import expected_segmented_time
from repro.sim.batch import simulate_batch
from repro.sim.rng import make_rng


def _model(lambda_ind=3e-5, f=0.3) -> PatternModel:
    return PatternModel(
        errors=ErrorModel(lambda_ind=lambda_ind, fail_stop_fraction=f),
        costs=ResilienceCosts.simple(checkpoint=80.0, verification=8.0, downtime=40.0),
        speedup=AmdahlSpeedup(0.1),
    )


class TestAgainstAnalytic:
    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    @pytest.mark.parametrize("f", [0.0, 0.3, 1.0])
    def test_mean_matches(self, k, f):
        model = _model(f=f)
        T, P = 2500.0, 40
        stats = simulate_segmented_batch(
            model, T, P, k, n_runs=400, n_patterns=50, rng=make_rng(11)
        )
        analytic = expected_segmented_time(T, P, k, model.errors, model.costs)
        per_run = stats.run_times / stats.n_patterns
        sem = per_run.std(ddof=1) / np.sqrt(stats.n_runs)
        assert abs(stats.mean_pattern_time - analytic) < 4 * max(sem, 1e-9)

    def test_k1_matches_vc_batch_distribution(self):
        model = _model()
        T, P = 2500.0, 40
        seg = simulate_segmented_batch(model, T, P, 1, 500, 40, make_rng(5))
        vc = simulate_batch(model, T, P, 500, 40, make_rng(6))
        pooled = np.sqrt(
            seg.run_times.var(ddof=1) / seg.n_runs + vc.run_times.var(ddof=1) / vc.n_runs
        )
        assert abs(seg.run_times.mean() - vc.run_times.mean()) < 4 * pooled


class TestBookkeeping:
    def test_error_free_deterministic(self):
        model = _model(lambda_ind=0.0)
        stats = simulate_segmented_batch(model, 1000.0, 10, 3, 5, 4, make_rng(1))
        expected = 4 * (1000.0 + 3 * 8.0 + 80.0)
        np.testing.assert_allclose(stats.run_times, expected)
        assert stats.n_fail_stop == 0

    def test_silent_only_counts(self):
        model = _model(lambda_ind=1e-4, f=0.0)
        stats = simulate_segmented_batch(model, 1000.0, 20, 4, 50, 40, make_rng(2))
        assert stats.n_fail_stop == 0
        assert stats.n_silent_detected == stats.n_recoveries > 0

    def test_reproducible(self):
        model = _model()
        a = simulate_segmented_batch(model, 1000.0, 20, 3, 20, 20, make_rng(9))
        b = simulate_segmented_batch(model, 1000.0, 20, 3, 20, 20, make_rng(9))
        np.testing.assert_array_equal(a.run_times, b.run_times)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"T": 0.0, "P": 10, "k": 1, "n_runs": 1, "n_patterns": 1},
            {"T": 10.0, "P": 10, "k": 0, "n_runs": 1, "n_patterns": 1},
            {"T": 10.0, "P": 10, "k": 1, "n_runs": 0, "n_patterns": 1},
        ],
    )
    def test_rejects_bad_args(self, kwargs):
        with pytest.raises(SimulationError):
            simulate_segmented_batch(_model(), rng=make_rng(1), **kwargs)
