"""Segmented patterns (k verifications per checkpoint) — exact model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AmdahlSpeedup,
    ErrorModel,
    PatternModel,
    ResilienceCosts,
    expected_pattern_time,
)
from repro.exceptions import InvalidParameterError, ValidityError
from repro.extensions.twolevel import (
    expected_segmented_time,
    optimal_segment_count,
    optimal_segmented_pattern,
    optimize_segments,
    segmented_overhead,
    segmented_period,
)


def _model(lambda_ind=2e-5, f=0.3, C=80.0, V=8.0, D=40.0, alpha=0.1) -> PatternModel:
    return PatternModel(
        errors=ErrorModel(lambda_ind=lambda_ind, fail_stop_fraction=f),
        costs=ResilienceCosts.simple(checkpoint=C, verification=V, downtime=D),
        speedup=AmdahlSpeedup(alpha),
    )


class TestReductionToProposition1:
    """k = 1 must reproduce the paper's VC pattern exactly."""

    @pytest.mark.parametrize("f", [1.0, 0.0, 0.35])
    def test_k1_equals_eq2(self, f):
        model = _model(f=f)
        T, P = 2500.0, 40
        base = expected_pattern_time(T, P, model.errors, model.costs)
        seg = expected_segmented_time(T, P, 1, model.errors, model.costs)
        assert seg == pytest.approx(base, rel=1e-12)

    def test_k1_on_hera(self, hera_sc3):
        T, P = 9000.0, 256.0
        base = expected_pattern_time(T, P, hera_sc3.errors, hera_sc3.costs)
        seg = expected_segmented_time(T, P, 1, hera_sc3.errors, hera_sc3.costs)
        assert seg == pytest.approx(base, rel=1e-12)

    def test_error_free_any_k(self):
        model = _model(lambda_ind=0.0)
        T, P = 1000.0, 10
        for k in (1, 2, 5):
            expected = T + k * 8.0 + 80.0  # T + kV + C
            assert expected_segmented_time(
                T, P, k, model.errors, model.costs
            ) == pytest.approx(expected, rel=1e-12)


class TestStructure:
    def test_extra_segments_add_verification_cost_when_silent_free(self):
        # With only fail-stop errors, more verifications are pure loss.
        model = _model(f=1.0)
        T, P = 2500.0, 40
        E1 = expected_segmented_time(T, P, 1, model.errors, model.costs)
        E4 = expected_segmented_time(T, P, 4, model.errors, model.costs)
        assert E4 > E1

    def test_segments_help_under_silent_errors(self):
        # Silent-heavy mix with expensive checkpoints: early detection wins.
        model = _model(f=0.05, C=300.0, V=3.0, lambda_ind=5e-5)
        T, P = 4000.0, 40
        E1 = expected_segmented_time(T, P, 1, model.errors, model.costs)
        E4 = expected_segmented_time(T, P, 4, model.errors, model.costs)
        assert E4 < E1

    def test_unimodal_in_k(self):
        # V must be a noticeable fraction of C for the optimum to sit at
        # small k (the detection gain saturates as (k+1)/2k -> 1/2 while
        # the verification bill grows linearly).
        model = _model(f=0.1, C=300.0, V=30.0, lambda_ind=5e-6)
        T, P = 4000.0, 40
        E = [
            expected_segmented_time(T, P, k, model.errors, model.costs)
            for k in range(1, 41)
        ]
        i = int(np.argmin(E))
        assert 0 < i < len(E) - 1
        assert all(a >= b for a, b in zip(E[: i + 1], E[1 : i + 1]))
        assert all(a <= b for a, b in zip(E[i:], E[i + 1 :]))

    def test_overhead_definition(self):
        model = _model()
        T, P, k = 2500.0, 40, 3
        E = expected_segmented_time(T, P, k, model.errors, model.costs)
        assert segmented_overhead(T, P, k, model) == pytest.approx(
            model.speedup.overhead(P) * E / T
        )

    def test_vectorised_over_k(self):
        model = _model()
        ks = np.array([1.0, 2.0, 4.0])
        out = expected_segmented_time(2500.0, 40, ks, model.errors, model.costs)
        assert out.shape == (3,)
        assert out[0] == pytest.approx(
            expected_segmented_time(2500.0, 40, 1, model.errors, model.costs)
        )

    def test_rejects_bad_k(self):
        model = _model()
        with pytest.raises(InvalidParameterError):
            expected_segmented_time(100.0, 10, 0, model.errors, model.costs)

    def test_rejects_zero_period(self):
        model = _model()
        with pytest.raises(InvalidParameterError):
            expected_segmented_time(0.0, 10, 2, model.errors, model.costs)


class TestFirstOrder:
    def test_period_reduces_to_theorem1_at_k1(self, hera_sc3):
        from repro.core import optimal_period

        P = 256.0
        assert segmented_period(P, 1, hera_sc3.errors, hera_sc3.costs) == pytest.approx(
            optimal_period(P, hera_sc3.errors, hera_sc3.costs)
        )

    def test_optimal_k_formula(self):
        model = _model(f=0.2, C=320.0, V=5.0)
        P = 40
        lam_f = model.errors.fail_stop_rate(P)
        lam_s = model.errors.silent_rate(P)
        expected = np.sqrt(320.0 * lam_s / (5.0 * (lam_f + lam_s)))
        assert optimal_segment_count(P, model.errors, model.costs) == pytest.approx(
            expected
        )

    def test_optimal_k_clamped_to_one(self):
        # Fail-stop only: k* formula gives 0 -> clamp to 1.
        model = _model(f=1.0)
        assert optimal_segment_count(40, model.errors, model.costs) == 1.0

    def test_k_star_matches_numerical_argmin(self, hera_sc3):
        P = 256.0
        k_fo = optimal_segment_count(P, hera_sc3.errors, hera_sc3.costs)
        best = optimize_segments(hera_sc3, P)
        assert abs(best.segments - k_fo) <= 1.5

    def test_free_verification_raises(self):
        model = PatternModel(
            errors=ErrorModel(1e-6, 0.5),
            costs=ResilienceCosts.simple(checkpoint=100.0, verification=0.0),
            speedup=AmdahlSpeedup(0.1),
        )
        with pytest.raises(ValidityError):
            optimal_segment_count(40, model.errors, model.costs)

    def test_first_order_solution_near_numerical(self, hera_sc3):
        P = 256.0
        fo = optimal_segmented_pattern(hera_sc3, P)
        num = optimize_segments(hera_sc3, P)
        assert fo.overhead == pytest.approx(num.overhead, rel=0.01)


class TestOptimizeSegments:
    def test_beats_or_matches_k1(self, hera_sc3):
        from repro.optimize import optimize_period

        P = 256.0
        best = optimize_segments(hera_sc3, P)
        k1 = optimize_period(hera_sc3, P)
        assert best.overhead <= k1.overhead * (1 + 1e-12)

    def test_improvement_on_silent_heavy_platform(self):
        # Atlas: 94% silent + sizeable checkpoint -> interleaving pays.
        from repro.optimize import optimize_period
        from repro.platforms import build_model

        model = build_model("Atlas", 3)
        P = 256.0
        best = optimize_segments(model, P)
        k1 = optimize_period(model, P)
        assert best.segments > 1
        assert best.overhead < k1.overhead

    def test_segment_length_property(self, hera_sc3):
        best = optimize_segments(hera_sc3, 256.0)
        assert best.segment_length == pytest.approx(best.period / best.segments)

    def test_rejects_bad_kmax(self, hera_sc3):
        with pytest.raises(InvalidParameterError):
            optimize_segments(hera_sc3, 256.0, k_max=0)
