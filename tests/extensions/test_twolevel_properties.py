"""Property-based tests (hypothesis) on the segmented-pattern extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AmdahlSpeedup,
    ErrorModel,
    PatternModel,
    ResilienceCosts,
    expected_pattern_time,
)
from repro.extensions.twolevel import (
    expected_segmented_time,
    segmented_overhead,
    segmented_period,
)

rates = st.floats(min_value=1e-10, max_value=1e-4)
fractions = st.floats(min_value=0.0, max_value=1.0)
periods = st.floats(min_value=10.0, max_value=1e5)
costs_v = st.floats(min_value=0.1, max_value=500.0)
segment_counts = st.integers(min_value=1, max_value=32)


def _model(lam, f, C, V, D) -> PatternModel:
    return PatternModel(
        errors=ErrorModel(lambda_ind=lam, fail_stop_fraction=f),
        costs=ResilienceCosts.simple(checkpoint=C, verification=V, downtime=D),
        speedup=AmdahlSpeedup(0.1),
    )


class TestSegmentedProperties:
    @given(
        lam=rates,
        f=fractions,
        T=periods,
        C=costs_v,
        V=costs_v,
        D=st.floats(min_value=0.0, max_value=1e4),
    )
    @settings(max_examples=150, deadline=None)
    def test_k1_always_equals_proposition1(self, lam, f, T, C, V, D):
        model = _model(lam, f, C, V, D)
        P = 25.0
        base = expected_pattern_time(T, P, model.errors, model.costs)
        seg = expected_segmented_time(T, P, 1, model.errors, model.costs)
        if np.isfinite(base):
            assert seg == pytest.approx(base, rel=1e-9)

    @given(lam=rates, f=fractions, T=periods, k=segment_counts)
    @settings(max_examples=150, deadline=None)
    def test_positive_and_above_floor(self, lam, f, T, k):
        model = _model(lam, f, 60.0, 10.0, 30.0)
        P = 25.0
        E = expected_segmented_time(T, P, k, model.errors, model.costs)
        floor = T + k * 10.0 + 60.0  # T + kV + C
        assert not np.isnan(E)
        if np.isfinite(E):
            assert E >= floor * (1 - 1e-9)

    @given(lam=rates, T=periods, k=segment_counts)
    @settings(max_examples=100, deadline=None)
    def test_fail_stop_only_monotone_in_k(self, lam, T, k):
        # Without silent errors, extra verifications are pure cost.
        model = _model(lam, 1.0, 60.0, 10.0, 30.0)
        P = 25.0
        E_k = expected_segmented_time(T, P, k, model.errors, model.costs)
        E_k1 = expected_segmented_time(T, P, k + 1, model.errors, model.costs)
        if np.isfinite(E_k) and np.isfinite(E_k1):
            assert E_k1 >= E_k * (1 - 1e-12)

    @given(lam=rates, f=fractions, T=periods, k=segment_counts)
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_rate(self, lam, f, T, k):
        model_cold = _model(lam, f, 60.0, 10.0, 30.0)
        model_hot = _model(lam * 5.0, f, 60.0, 10.0, 30.0)
        P = 25.0
        E_cold = expected_segmented_time(T, P, k, model_cold.errors, model_cold.costs)
        E_hot = expected_segmented_time(T, P, k, model_hot.errors, model_hot.costs)
        if np.isfinite(E_cold) and np.isfinite(E_hot):
            assert E_hot >= E_cold * (1 - 1e-12)

    @given(lam=rates, f=fractions, k=segment_counts)
    @settings(max_examples=100, deadline=None)
    def test_first_order_period_positive_and_near_optimal(self, lam, f, k):
        model = _model(lam, f, 60.0, 10.0, 30.0)
        P = 25.0
        T_star = segmented_period(P, k, model.errors, model.costs)
        assert T_star > 0.0
        lam_eff = model.errors.fail_stop_rate(P) / 2.0 + model.errors.silent_rate(P)
        if lam_eff * T_star < 0.05:  # inside the first-order regime
            H_star = segmented_overhead(T_star, P, k, model)
            assert H_star <= segmented_overhead(T_star * 2.0, P, k, model) * (1 + 1e-9)
            assert H_star <= segmented_overhead(T_star * 0.5, P, k, model) * (1 + 1e-9)
