"""Figure 3 bench: processor-count sweep on Hera (period, overhead, gap)."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig3_processors

from conftest import emit


def test_fig3_hera(benchmark, sim_settings):
    results = benchmark.pedantic(
        lambda: fig3_processors.run(platform="Hera", settings=sim_settings),
        rounds=1,
        iterations=1,
    )
    emit(results)
    periods, overheads, gaps = results
    # (a) Theorem-1 period decreases with P for bounded-cost scenarios.
    T3 = periods.column_array("scenario_3")
    assert np.all(np.diff(T3) < 0)
    # (c) first-order vs optimal gap below the paper's 0.2% bound.
    for sc in (1, 2, 3, 4, 5, 6):
        assert np.all(gaps.column_array(f"scenario_{sc}") < 0.2)
