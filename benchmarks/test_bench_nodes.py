"""Extension bench: node-level failure superposition.

Prints the Palm-Khintchine table — simulated overhead of the Hera/sc1
optimal pattern when failures are generated per node (exponential,
stationary Weibull, fresh Weibull) against the aggregated-platform
analytic prediction — and times the node-level simulator against the
aggregated event-driven reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.io.tables import render_table
from repro.platforms import build_model
from repro.sim.nodes import simulate_run_nodes
from repro.sim.protocol import simulate_run
from repro.sim.rng import spawn_rngs
from repro.sim.streams import WeibullArrivals

T_OPT, P_OPT = 6554.9, 207
N_RUNS, N_PATTERNS = 25, 50


@pytest.fixture(scope="module")
def model():
    return build_model("Hera", 1)


def test_palm_khintchine_table(benchmark, model):
    lam_node = model.errors.lambda_ind * model.errors.fail_stop_fraction
    w = WeibullArrivals.from_mean(0.7, 1.0 / lam_node)
    work = N_PATTERNS * T_OPT * float(model.speedup.speedup(P_OPT))
    analytic = float(model.overhead(T_OPT, P_OPT))

    def sweep():
        rows = []
        configs = [
            ("aggregated analytic (paper)", None, None),
            ("exponential nodes", {}, 61),
            ("Weibull 0.7 nodes, stationary", {"node_process": w}, 62),
            ("Weibull 0.7 nodes, fresh machine", {"node_process": w, "stationary": False}, 63),
        ]
        for label, kwargs, seed in configs:
            if kwargs is None:
                rows.append((label, analytic))
                continue
            times = np.array(
                [
                    simulate_run_nodes(
                        model, T_OPT, P_OPT, N_PATTERNS, rng, **kwargs
                    ).total_time
                    for rng in spawn_rngs(N_RUNS, seed=seed)
                ]
            )
            rows.append((label, float(times.mean() / work)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ("failure model", "overhead"),
            rows,
            title=(
                "Hera sc1 at the optimal pattern: per-node failure laws vs the "
                "paper's aggregated Poisson platform (Palm-Khintchine in action)"
            ),
        )
    )
    by_label = dict(rows)
    # Stationary Weibull nodes behave like the Poisson platform...
    assert by_label["Weibull 0.7 nodes, stationary"] == pytest.approx(analytic, rel=0.02)
    # ...while a fresh machine of the same nodes pays infant mortality.
    assert by_label["Weibull 0.7 nodes, fresh machine"] > by_label[
        "Weibull 0.7 nodes, stationary"
    ]


def test_node_level_simulator_speed(benchmark, model):
    def run():
        return [
            simulate_run_nodes(model, T_OPT, P_OPT, N_PATTERNS, rng)
            for rng in spawn_rngs(5, seed=71)
        ]

    stats = benchmark(run)
    assert len(stats) == 5


def test_aggregated_reference_speed(benchmark, model):
    def run():
        return [
            simulate_run(model, T_OPT, P_OPT, N_PATTERNS, rng)
            for rng in spawn_rngs(5, seed=72)
        ]

    stats = benchmark(run)
    assert len(stats) == 5
