"""Extension bench: robustness of the exponential-optimal pattern
under Weibull fail-stop arrivals.

Section II assumes Poisson failures.  Field studies often fit Weibull
inter-arrivals with shape < 1 (bursty).  This bench deploys the
pattern optimised under the exponential assumption and simulates it
under Weibull arrivals of equal MTBF, reporting the simulated overhead
per shape — quantifying how much the paper's model-mismatch costs (or
saves: clustered failures lose *less* work per failure at these rates,
so the exponential assumption turns out conservative on the mean).
"""

from __future__ import annotations

import numpy as np

from repro.io.tables import render_table
from repro.optimize import optimize_allocation
from repro.platforms import build_model
from repro.sim.renewal import simulate_run_renewal
from repro.sim.rng import spawn_rngs
from repro.sim.streams import WeibullArrivals

SHAPES = (0.5, 0.7, 1.0, 1.5)
N_RUNS, N_PATTERNS = 40, 60


def test_weibull_robustness(benchmark):
    model = build_model("Hera", 1)
    opt = optimize_allocation(model)
    T, P = opt.period, opt.processors
    lam_f = float(model.errors.fail_stop_rate(P))
    work = N_PATTERNS * T * float(model.speedup.speedup(P))

    def sweep():
        rows = []
        for i, shape in enumerate(SHAPES):
            stream = WeibullArrivals.from_mean(shape, 1.0 / lam_f)
            times = np.array(
                [
                    simulate_run_renewal(
                        model, T, P, N_PATTERNS, rng, fail_stop=stream
                    ).total_time
                    for rng in spawn_rngs(N_RUNS, seed=100 + i)
                ]
            )
            overheads = times / work
            rows.append(
                (
                    shape,
                    round(float(overheads.mean()), 5),
                    round(float(overheads.std(ddof=1)), 5),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ("weibull shape", "overhead mean", "overhead std"),
            rows,
            title=(
                "Hera sc1: exponential-optimal pattern "
                f"(T={T:.0f}s, P={P:.0f}) under Weibull fail-stop arrivals "
                "(equal MTBF; shape 1.0 = the paper's Poisson assumption)"
            ),
        )
    )
    means = {shape: mean for shape, mean, _ in rows}
    analytic = float(model.overhead(T, P))
    # Shape 1.0 must agree with the exponential analysis.
    assert abs(means[1.0] - analytic) / analytic < 0.01
    # Everything stays within a tight band at platform-realistic rates:
    # the paper's pattern is robust to the arrival-law mis-specification.
    for shape in SHAPES:
        assert abs(means[shape] - analytic) / analytic < 0.05
