"""Figure 5 bench: error-rate sweep at alpha = 0.1 with slope fits."""

from __future__ import annotations

import numpy as np

from repro.analysis.asymptotics import fit_loglog_slope
from repro.experiments import fig5_error_rate

from conftest import emit


def test_fig5_hera(benchmark, sim_settings):
    results = benchmark.pedantic(
        lambda: fig5_error_rate.run(platform="Hera", settings=sim_settings),
        rounds=1,
        iterations=1,
    )
    emit(results)
    processors, periods, overheads = results
    lams = processors.column_array("lambda_ind")
    # Headline orders: P* ~ lambda^-1/4 (sc 1) and ~ lambda^-1/3 (sc 3).
    assert fit_loglog_slope(lams, processors.column_array("sc1_optimal")).matches(
        -0.25, tol=0.03
    )
    assert fit_loglog_slope(lams, processors.column_array("sc3_optimal")).matches(
        -1.0 / 3.0, tol=0.03
    )
    # T* ~ lambda^-1/2 (sc 1) and ~ lambda^-1/3 (sc 3).
    assert fit_loglog_slope(lams, periods.column_array("sc1_optimal")).matches(
        -0.5, tol=0.03
    )
    assert fit_loglog_slope(lams, periods.column_array("sc3_optimal")).matches(
        -1.0 / 3.0, tol=0.03
    )
    # Overhead tends to the alpha = 0.1 floor as processors become reliable.
    H1 = overheads.column_array("sc1_optimal")
    assert H1[0] < H1[-1]
    assert abs(H1[0] - 0.1) < 0.01
