"""Extension bench: interleaved verifications (k segments per checkpoint).

Prints the overhead as a function of the segment count k on each SCR
platform (scenario 3, where the checkpoint is expensive and constant),
next to the first-order k* — showing when the paper's single
verification (k = 1) leaves measurable performance on the table.
"""

from __future__ import annotations

import pytest

from repro.extensions.twolevel import (
    optimal_segment_count,
    optimize_segments,
    segmented_overhead,
    segmented_period,
)
from repro.io.tables import render_table
from repro.optimize import optimize_allocation
from repro.platforms import PLATFORM_NAMES, build_model


@pytest.mark.parametrize("platform", PLATFORM_NAMES)
def test_segment_sweep(benchmark, platform):
    model = build_model(platform, 3)
    P = optimize_allocation(model).processors

    def sweep():
        rows = []
        for k in (1, 2, 4, 8, 16):
            T = segmented_period(P, k, model.errors, model.costs)
            rows.append((k, round(T, 1), float(segmented_overhead(T, P, k, model))))
        return rows

    rows = benchmark(sweep)
    k_star = optimal_segment_count(P, model.errors, model.costs)
    best = optimize_segments(model, P)
    print()
    print(
        render_table(
            ("k", "T*_k (s)", "overhead"),
            rows,
            title=(
                f"{platform} scenario 3 at P={P:.0f}: overhead vs segment count "
                f"(first-order k* = {k_star:.2f}, numerical best k = {best.segments:.0f})"
            ),
        )
    )
    # The numerical best never loses to the single-verification pattern.
    h_k1 = [h for (k, _, h) in rows if k == 1][0]
    assert best.overhead <= h_k1 * (1 + 1e-12)


def test_joint_optimum_with_segments(benchmark):
    # How much does interleaving buy at the jointly optimal allocation?
    model = build_model("Atlas", 3)  # 94% silent: the best case for k > 1
    base = optimize_allocation(model)

    def run():
        return optimize_segments(model, base.processors)

    best = benchmark(run)
    gain = (base.overhead - best.overhead) / base.overhead
    print(
        f"\nAtlas sc3 @ P={base.processors:.0f}: k=1 overhead {base.overhead:.5f} "
        f"-> k={best.segments:.0f} overhead {best.overhead:.5f} "
        f"({gain:.2%} improvement)"
    )
    assert best.segments > 1
    assert gain > 0.0
