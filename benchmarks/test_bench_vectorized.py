"""Backend shoot-out: batch vs vectorized at the paper's 500x500 budget.

One workload per simulation-heavy figure (5, 6, 7): the numerically
optimal PATTERN(T*, P*) of a representative parameter point, simulated
at full paper fidelity.  The ``speedup`` tests pin the acceptance bar:
the aggregated vectorized backend must be at least 5x faster than the
per-pattern batch sampler on every workload (it lands at 10-50x here).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.optimize.allocation import optimize_allocation
from repro.platforms.catalog import DEFAULT_ALPHA
from repro.platforms.scenarios import build_model
from repro.sim.montecarlo import PAPER
from repro.sim.batch import simulate_batch
from repro.sim.rng import make_rng
from repro.sim.vectorized import simulate_vectorized

SEED = 20160913

#: The acceptance bar is 5x; CI derates via the environment because a
#: contended shared runner can compress the measured gap.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_BENCH_SPEEDUP_FLOOR", "5.0"))

#: figure id -> model constructor kwargs (Hera, the headline platform).
WORKLOADS = {
    "fig5": dict(scenario_id=1, alpha=DEFAULT_ALPHA, lambda_ind=1e-9),
    "fig6": dict(scenario_id=3, alpha=0.0),
    "fig7": dict(scenario_id=1, alpha=DEFAULT_ALPHA, downtime=600.0),
}


@pytest.fixture(scope="module")
def workload_points():
    """(model, T*, P*) per figure workload, solved once per session."""
    points = {}
    for fig, kwargs in WORKLOADS.items():
        model = build_model("Hera", **kwargs)
        sol = optimize_allocation(model)
        points[fig] = (model, sol.period, sol.processors)
    return points


@pytest.mark.parametrize("fig", sorted(WORKLOADS))
def test_paper_budget_batch(benchmark, workload_points, fig):
    model, T, P = workload_points[fig]
    benchmark.group = f"{fig} paper-budget"
    benchmark.pedantic(
        lambda: simulate_batch(
            model, T, P, PAPER.n_runs, PAPER.n_patterns, make_rng(SEED)
        ),
        rounds=5,
        iterations=1,
    )


@pytest.mark.parametrize("fig", sorted(WORKLOADS))
def test_paper_budget_vectorized(benchmark, workload_points, fig):
    model, T, P = workload_points[fig]
    benchmark.group = f"{fig} paper-budget"
    benchmark.pedantic(
        lambda: simulate_vectorized(
            model, T, P, PAPER.n_runs, PAPER.n_patterns, seed=SEED
        ),
        rounds=5,
        iterations=1,
    )


def _best_of(fn, reps: int = 7) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("fig", sorted(WORKLOADS))
def test_vectorized_speedup_at_least_5x(workload_points, wallclock_assertions, fig):
    """The acceptance criterion of the backend: >=5x over batch."""
    model, T, P = workload_points[fig]

    def run_batch():
        simulate_batch(model, T, P, PAPER.n_runs, PAPER.n_patterns, make_rng(SEED))

    def run_vectorized():
        simulate_vectorized(model, T, P, PAPER.n_runs, PAPER.n_patterns, seed=SEED)

    run_batch(), run_vectorized()  # warm both paths
    t_batch = _best_of(run_batch)
    t_vec = _best_of(run_vectorized)
    speedup = t_batch / t_vec
    print(f"\n  {fig}: batch {t_batch * 1e3:.2f} ms, "
          f"vectorized {t_vec * 1e3:.2f} ms, speedup {speedup:.1f}x")
    assert speedup >= SPEEDUP_FLOOR, (
        f"{fig}: vectorized only {speedup:.1f}x faster than batch "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


@pytest.mark.parametrize("fig", sorted(WORKLOADS))
def test_backends_agree_at_paper_budget(workload_points, fig):
    """Same budget, same distribution: means within pooled 5-sigma."""
    model, T, P = workload_points[fig]
    batch = simulate_batch(model, T, P, PAPER.n_runs, PAPER.n_patterns, make_rng(SEED))
    vec = simulate_vectorized(model, T, P, PAPER.n_runs, PAPER.n_patterns, seed=SEED)
    sem_b = batch.run_times.std(ddof=1) / batch.n_runs**0.5
    sem_v = vec.run_times.std(ddof=1) / vec.n_runs**0.5
    pooled = (sem_b**2 + sem_v**2) ** 0.5
    assert abs(batch.run_times.mean() - vec.run_times.mean()) < 5 * pooled
