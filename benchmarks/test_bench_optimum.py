"""Batched analytic-optimum engine vs the historical scalar pass.

The declare phase of every default-evaluator study solves one
first-order closed form and one numerical ``(T, P)`` optimisation per
grid cell — at ~20 ms a cell, the analytic pass dominates any
``--no-sim`` sweep and the staging of scenario families.  PR 8 replaced
the per-cell loop with one array sweep per study column
(:func:`repro.optimize.allocation.optimize_allocation_batch`) plus a
cross-replicate memo that serves repeated cells without recompute.

The acceptance workload is the Figure 5 scenario-family analytic pass
(3 resampled replicates of the 27-cell error-rate grid, no
simulation): the batched+memoized engine must beat the scalar path
(``REPRO_ANALYTIC_BATCH=0``) by ``REPRO_BENCH_OPTIMUM_FLOOR`` (default
5x; the measured gain is ~3x memo x ~4x batch).  The workload is pure
single-process compute, so the bench is 1-CPU-safe: the gain measures
vectorization and dedup, not parallelism.  An exact assertion pins the
emitted tables of both modes byte-identical — the engine trades only
time, never bits.  Every measurement lands in ``BENCH_optimum.json``
(path overridable via ``REPRO_BENCH_OPTIMUM_JSON``).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.common import SimSettings
from repro.experiments.pipeline import SimulationPipeline
from repro.experiments.registry import REGISTRY
from repro.experiments.scenarios import Resample, ScenarioSet
from repro.experiments.spec import run_study

#: Batched-over-scalar floor on the analytic pass (measured ~12x; the
#: floor derates for noisy CI hardware while still catching a broken
#: batch path, which would clock in at ~1x).
OPTIMUM_FLOOR = float(os.environ.get("REPRO_BENCH_OPTIMUM_FLOOR", "5.0"))

REPLICATES = 3

#: Analytic columns only: the bench times the optimisers, not sampling.
SETTINGS = SimSettings(simulate=False)

RESULTS: dict[str, float | int | str] = {
    "study": "fig5 scenario family (3 replicates), analytic pass only",
    "replicates": REPLICATES,
    "floor": OPTIMUM_FLOOR,
}


@pytest.fixture(scope="module", autouse=True)
def write_bench_json(bench_writer):
    yield
    bench_writer("REPRO_BENCH_OPTIMUM_JSON", "BENCH_optimum.json", RESULTS)


def _family_pass() -> tuple[float, list[str], dict[str, int]]:
    """One full scenario-family analytic pass on a fresh pipeline."""
    sset = ScenarioSet("bench", REGISTRY["fig5"], [Resample(REPLICATES)])
    with SimulationPipeline(jobs=1) as pipe:
        start = time.perf_counter()
        families = sset.stage(pipe, SETTINGS)
        pipe.resolve()
        tables = [t.table() for family in families for t in family.finish()]
        elapsed = time.perf_counter() - start
        counts = {
            "evaluated": pipe.analytic_memo.evaluated,
            "served": pipe.analytic_memo.served,
        }
    return elapsed, tables, counts


def _timed(fn, repeats: int = 2):
    """Best-of-N wall clock (and the last call's payload)."""
    best = float("inf")
    payload = None
    for _ in range(repeats):
        elapsed, *payload = fn()
        best = min(best, elapsed)
    return best, payload


def _forced_scalar(fn):
    """Run ``fn`` with the batch engine switched off."""

    def wrapped():
        previous = os.environ.get("REPRO_ANALYTIC_BATCH")
        os.environ["REPRO_ANALYTIC_BATCH"] = "0"
        try:
            return fn()
        finally:
            if previous is None:
                del os.environ["REPRO_ANALYTIC_BATCH"]
            else:
                os.environ["REPRO_ANALYTIC_BATCH"] = previous

    return wrapped


def test_batched_analytic_pass_speedup(wallclock_assertions):
    """Acceptance: batched+memoized analytic pass >= floor x scalar."""
    t_scalar, (scalar_tables, scalar_counts) = _timed(_forced_scalar(_family_pass))
    t_batch, (batch_tables, batch_counts) = _timed(_family_pass)

    # Exact: the engine changes wall-clock only, never a table byte.
    assert batch_tables == scalar_tables
    # The scalar path bypasses the engine entirely; the batch path
    # evaluates each unique cell once and memo-serves the replicates.
    assert scalar_counts == {"evaluated": 0, "served": 0}
    assert batch_counts == {"evaluated": 27, "served": 54}

    gain = t_scalar / t_batch
    RESULTS["points"] = 27 * REPLICATES
    RESULTS["unique_points"] = batch_counts["evaluated"]
    RESULTS["scalar_seconds"] = t_scalar
    RESULTS["batched_seconds"] = t_batch
    RESULTS["analytic_batch_gain"] = gain
    print(
        f"\n  {27 * REPLICATES} analytic points ({batch_counts['evaluated']} "
        f"unique): scalar {t_scalar * 1e3:.0f} ms, batched "
        f"{t_batch * 1e3:.0f} ms, gain {gain:.2f}x"
    )
    assert gain >= OPTIMUM_FLOOR, (
        f"batched analytic pass only {gain:.2f}x over scalar "
        f"(floor {OPTIMUM_FLOOR}x)"
    )


def test_single_study_engine_gain():
    """Informational: pure engine gain on one cold fig5 grid (no memo)."""
    start = time.perf_counter()
    scalar_results = _forced_scalar(
        lambda: (run_study(REGISTRY["fig5"], settings=SETTINGS),)
    )()[0]
    t_scalar = time.perf_counter() - start
    start = time.perf_counter()
    batch_results = run_study(REGISTRY["fig5"], settings=SETTINGS)
    t_batch = time.perf_counter() - start
    assert [r.table() for r in batch_results] == [r.table() for r in scalar_results]
    RESULTS["single_study_scalar_seconds"] = t_scalar
    RESULTS["single_study_batched_seconds"] = t_batch
    RESULTS["single_study_gain"] = t_scalar / t_batch
    print(
        f"\n  single fig5 grid: scalar {t_scalar * 1e3:.0f} ms, "
        f"batched {t_batch * 1e3:.0f} ms, gain {t_scalar / t_batch:.2f}x"
    )
