"""Simulated-work savings of adaptive replicate scheduling.

The fixed path simulates every declared replicate of every variant
over the full grid; the adaptive engine stages replicates in waves and
stops staging a grid row once its relative band width stabilized
within the tolerance.  The acceptance bar: on the fig5 error-rate
grid, an adaptive run capped at the same ``max_replicates`` must
simulate at least ``REPRO_BENCH_ADAPTIVE_FLOOR`` (default 2x) fewer
replicate-points than the fixed run *and* converge every grid row, so
the saving is not bought with an unconverged band.

The metric is count-based (member-rows staged, tied to the pipeline's
``computed`` tally exactly), not wall-clock, so the bench is 1-CPU-safe
and immune to scheduler noise.  Every measurement lands in
``BENCH_adaptive.json`` (path overridable via
``REPRO_BENCH_ADAPTIVE_JSON``) so CI can archive the perf trajectory.
"""

from __future__ import annotations

import os
import time

import pytest

import dataclasses

from repro.experiments.common import SimSettings
from repro.experiments.pipeline import SimulationPipeline
from repro.experiments.registry import REGISTRY
from repro.experiments.scenarios import (
    AdaptivePolicy,
    AdaptiveRun,
    Resample,
    ScenarioSet,
)
from repro.sim.montecarlo import Fidelity

#: Required simulated-work reduction of adaptive over fixed (ideal on
#: this workload is 3.0x: 4 of 12 replicates suffice for every row).
ADAPTIVE_FLOOR = float(os.environ.get("REPRO_BENCH_ADAPTIVE_FLOOR", "2.0"))

#: The fixed path's declared replicate count — also the adaptive cap,
#: so both runs answer the same question with the same worst case.
MAX_REPLICATES = 12

#: A deliberately *tight* tolerance (2%, below the 5% CLI default):
#: the bands of this workload stabilize fast, and a tight tolerance
#: shows the saving is not an artifact of a loose stopping rule.
POLICY = AdaptivePolicy(
    min_replicates=3,
    max_replicates=MAX_REPLICATES,
    wave=1,
    band_tol=0.02,
    stable_waves=1,
)

#: Same simulation-bound workload as the scenario-dedup bench: one
#: batch-sampler call at a fixed pattern per grid cell, no per-point
#: optimiser, so the counts below map 1:1 onto sampling work.
SETTINGS = SimSettings(
    fidelity=Fidelity(n_runs=1000, n_patterns=500, name="bench"), method="batch"
)


def _bench_eval(ctx, model, needed):
    """Simulate the fixed pattern PATTERN(3600 s, 512) under ``model``."""
    return {"H_sim": ctx.pipeline.simulate_mean(model, 3600.0, 512.0, ctx.settings)}


#: The fig5 error-rate grid over scenarios 1/3/5, one simulated point
#: per grid cell (27 per full-grid member).
BASE_SPEC = dataclasses.replace(
    REGISTRY["fig5"],
    name="bench_grid",
    point_eval=_bench_eval,
    panels=(
        dataclasses.replace(
            REGISTRY["fig5"].panels[2], columns=("H_sim",), notes=()
        ),
    ),
)

RESULTS: dict[str, float | int | str] = {
    "study": "fig5 error-rate grid, fixed pattern, batch sampler",
    "max_replicates": MAX_REPLICATES,
    "policy": (
        f"min {POLICY.min_replicates}, wave {POLICY.wave}, "
        f"band tol {POLICY.band_tol:g}, {POLICY.stable_waves} stable"
    ),
    "fidelity": f"{SETTINGS.fidelity.n_runs}x{SETTINGS.fidelity.n_patterns}",
}


@pytest.fixture(scope="module", autouse=True)
def write_bench_json(bench_writer):
    yield
    bench_writer("REPRO_BENCH_ADAPTIVE_JSON", "BENCH_adaptive.json", RESULTS)


def _tally_events(tallies):
    return lambda e: tallies.__setitem__(e.status, tallies[e.status] + 1)


def _fixed_run(cache_dir):
    """(elapsed, computed-point count) of the fixed 12-replicate set."""
    sset = ScenarioSet("bench", BASE_SPEC, [Resample(MAX_REPLICATES)])
    tallies = {"served": 0, "computed": 0, "skipped": 0}
    with SimulationPipeline(jobs=1, cache_dir=cache_dir) as pipe:
        start = time.perf_counter()
        families = sset.stage(pipe, SETTINGS)
        pipe.resolve(on_event=_tally_events(tallies))
        for family in families:
            family.finish()
        elapsed = time.perf_counter() - start
    return elapsed, tallies["computed"]


def _adaptive_run(cache_dir):
    """(elapsed, run summary, computed-point count) of the adaptive set."""
    sset = ScenarioSet("bench", BASE_SPEC, [Resample(MAX_REPLICATES)])
    tallies = {"served": 0, "computed": 0, "skipped": 0}
    tally = _tally_events(tallies)
    with SimulationPipeline(jobs=1, cache_dir=cache_dir) as pipe:
        start = time.perf_counter()
        run = AdaptiveRun(sset, POLICY, pipe, SETTINGS)
        run.stage_initial()

        def on_event(event):
            tally(event)
            run.on_event(event)

        pipe.resolve(on_event=on_event, on_round=run.on_round)
        run.finalize()
        for family in run.families:
            family.finish()
        elapsed = time.perf_counter() - start
    return elapsed, run.summary(), tallies["computed"]


def test_adaptive_work_reduction(tmp_path):
    """Acceptance: adaptive stages >= floor x fewer replicate-points."""
    t_fixed, fixed_computed = _fixed_run(tmp_path / "fixed")
    t_adaptive, summary, adaptive_computed = _adaptive_run(tmp_path / "adaptive")

    # The saving must not be bought with an unconverged band: every
    # grid row met the band tolerance before staging stopped.
    assert summary["n_rows"] > 0
    assert summary["rows_converged"] == summary["n_rows"]

    # The count metric is real simulated work, not bookkeeping: each
    # member-row is one grid value x 3 scenario columns, all computed
    # (the caches start cold, so nothing is served).
    cells_per_row = fixed_computed // summary["fixed_rows"]
    assert fixed_computed == summary["fixed_rows"] * cells_per_row
    assert adaptive_computed == summary["rows_staged"] * cells_per_row

    reduction = summary["fixed_rows"] / summary["rows_staged"]
    RESULTS["n_rows"] = summary["n_rows"]
    RESULTS["rows_converged"] = summary["rows_converged"]
    RESULTS["fixed_member_rows"] = summary["fixed_rows"]
    RESULTS["adaptive_member_rows"] = summary["rows_staged"]
    RESULTS["fixed_points"] = fixed_computed
    RESULTS["adaptive_points"] = adaptive_computed
    RESULTS["fixed_seconds"] = t_fixed
    RESULTS["adaptive_seconds"] = t_adaptive
    RESULTS["work_reduction"] = reduction
    print(
        f"\n  fixed {fixed_computed} points ({t_fixed:.2f} s), adaptive "
        f"{adaptive_computed} points ({t_adaptive:.2f} s), "
        f"{summary['rows_converged']}/{summary['n_rows']} rows converged, "
        f"reduction {reduction:.2f}x"
    )
    assert reduction >= ADAPTIVE_FLOOR, (
        f"adaptive staged only {reduction:.2f}x fewer member-rows than "
        f"fixed (floor {ADAPTIVE_FLOOR}x)"
    )
