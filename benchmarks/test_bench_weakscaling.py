"""Extension bench: weak vs strong scaling under failures."""

from __future__ import annotations

import numpy as np

from repro.experiments import ext_weakscaling

from conftest import emit


def test_weakscaling_hera(benchmark, sim_settings):
    results = benchmark.pedantic(
        lambda: ext_weakscaling.run(platform="Hera", settings=sim_settings),
        rounds=1,
        iterations=1,
    )
    emit(results)
    sc1, sc3 = results
    # Strong scaling has a finite optimum; weak-scaling inflation is
    # monotone and catastrophically worse under linear checkpoint costs.
    H = sc1.column_array("strong_overhead")
    assert 0 < int(np.argmin(H)) < H.size - 1
    infl1 = sc1.column_array("weak_inflation")
    infl3 = sc3.column_array("weak_inflation")
    assert np.all(np.diff(infl1) > 0)
    assert infl1[-1] > 10 * infl3[-1]
