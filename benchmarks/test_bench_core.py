"""Micro-benchmarks of the analytical hot paths.

The figure sweeps evaluate Proposition 1 on large (T, P) grids; these
benches track the scalar call cost and the vectorised throughput that
the hpc-parallel optimisation guide's "vectorise the bottleneck" rule
bought us.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import expected_pattern_time, optimal_pattern, optimal_period
from repro.platforms import build_model


@pytest.fixture(scope="module")
def model():
    return build_model("Hera", 1)


def test_expected_time_scalar(benchmark, model):
    value = benchmark(lambda: expected_pattern_time(6000.0, 256.0, model.errors, model.costs))
    assert value > 6000.0


def test_expected_time_grid_100x100(benchmark, model):
    T = np.logspace(2, 5, 100)
    P = np.logspace(1, 4, 100)[:, None]

    def run():
        return expected_pattern_time(T, P, model.errors, model.costs)

    out = benchmark(run)
    assert out.shape == (100, 100)


def test_theorem1_vectorised(benchmark, model):
    P = np.logspace(1, 4, 1000)
    out = benchmark(lambda: optimal_period(P, model.errors, model.costs))
    assert out.shape == (1000,)


def test_closed_form_solution(benchmark, model):
    sol = benchmark(lambda: optimal_pattern(model))
    assert sol.processors > 0
