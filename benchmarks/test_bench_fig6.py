"""Figure 6 bench: error-rate sweep for perfectly parallel jobs (alpha=0)."""

from __future__ import annotations

from repro.analysis.asymptotics import fit_loglog_slope
from repro.experiments import fig6_alpha_zero

from conftest import emit


def test_fig6_hera(benchmark, sim_settings):
    results = benchmark.pedantic(
        lambda: fig6_alpha_zero.run(platform="Hera", settings=sim_settings),
        rounds=1,
        iterations=1,
    )
    emit(results)
    processors, periods, overheads = results
    lams = processors.column_array("lambda_ind")
    # Numerical orders reported by the paper: -1/2 (sc 1), -1 (sc 3/5).
    assert fit_loglog_slope(lams, processors.column_array("scenario_1")).matches(
        -0.5, tol=0.05
    )
    assert fit_loglog_slope(lams, processors.column_array("scenario_3")).matches(
        -1.0, tol=0.05
    )
    # T* ~ O(1) for bounded costs: flat across four decades of lambda.
    T3 = periods.column_array("scenario_3")
    assert T3.max() / T3.min() < 1.1
    # Simulated overhead scales ~ lambda^1/2 (sc 1) and ~ lambda (sc 3).
    H1 = overheads.column_array("scenario_1")
    H3 = overheads.column_array("scenario_3")
    assert fit_loglog_slope(lams, H1).matches(0.5, tol=0.1)
    assert fit_loglog_slope(lams, H3).matches(1.0, tol=0.1)
