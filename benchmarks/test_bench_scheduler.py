"""Event-driven scheduling vs wave barriers: the overlap gain.

The wave-barriered dispatcher drained one study at a time: every job of
a wave had to finish before the next wave's jobs could start, so a
single long job left pool workers idle at each wave tail.  The
:class:`repro.sim.scheduler.Scheduler` fuses all waves into one global
in-flight window, so the next wave's jobs backfill the idle workers.

The measured workload makes that tail explicit: several waves of
deliberately uneven sleep-bound jobs (one long straggler plus short
fillers per wave) on a two-worker pool.  Sleeps overlap perfectly even
on a single-core host, so the bench is 1-CPU-safe: the gain measures
scheduling, not hardware parallelism.  Acceptance: the global window
must beat per-wave barriers by ``REPRO_BENCH_SCHED_FLOOR`` (default
1.1x locally; derate on noisy shared runners).  Every measurement
lands in ``BENCH_scheduler.json`` (path overridable via
``REPRO_BENCH_SCHED_JSON``) so CI can archive the perf trajectory.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.sim.executors import PoolExecutor
from repro.sim.scheduler import Scheduler

#: Scheduled-over-waved floor (acceptance: 1.1x; derate on shared CI).
SCHED_FLOOR = float(os.environ.get("REPRO_BENCH_SCHED_FLOOR", "1.1"))

WORKERS = 2
MAX_INFLIGHT = 8

#: Wave shapes: one straggler + short fillers, mirroring a study whose
#: slowest chunk used to stall every study behind it.
WAVES = [[0.08, 0.01, 0.01, 0.01] for _ in range(4)]

RESULTS: dict[str, float | int | str] = {
    "workers": WORKERS,
    "max_inflight": MAX_INFLIGHT,
    "waves": len(WAVES),
    "jobs_per_wave": len(WAVES[0]),
}


@pytest.fixture(scope="module", autouse=True)
def write_bench_json(bench_writer):
    yield
    bench_writer("REPRO_BENCH_SCHED_JSON", "BENCH_scheduler.json", RESULTS)


def _nap(args):
    """One sleep-bound job (module-level: picklable)."""
    duration, index = args
    time.sleep(duration)
    return index


def _jobs(wave_index, wave):
    return [
        (_nap, ((duration, (wave_index, j)),), {})
        for j, duration in enumerate(wave)
    ]


def _pool_available() -> bool:
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=2) as pool:
            return list(pool.map(abs, [-1])) == [1]
    except Exception:  # pragma: no cover - sandbox-dependent
        return False


def _run_waved(executor) -> tuple[float, set]:
    """One scheduler drain per wave: the historical barrier semantics."""
    seen = set()
    start = time.perf_counter()
    for i, wave in enumerate(WAVES):
        scheduler = Scheduler(executor, max_inflight=MAX_INFLIGHT)
        for job in _jobs(i, wave):
            scheduler.add(job)
        for _, result in scheduler.events():  # barrier: drain the wave
            seen.add(result)
    return time.perf_counter() - start, seen


def _run_scheduled(executor) -> tuple[float, set]:
    """All waves fused into one global in-flight window."""
    seen = set()
    scheduler = Scheduler(executor, max_inflight=MAX_INFLIGHT)
    start = time.perf_counter()
    for i, wave in enumerate(WAVES):
        for job in _jobs(i, wave):
            scheduler.add(job)
    for _, result in scheduler.events():
        seen.add(result)
    return time.perf_counter() - start, seen


def test_global_window_beats_wave_barriers(wallclock_assertions):
    """Acceptance: fused dispatch >= SCHED_FLOOR x over per-wave barriers."""
    if not _pool_available():
        pytest.skip("no process pool on this host: nothing to overlap")
    expected = {(i, j) for i in range(len(WAVES)) for j in range(len(WAVES[0]))}
    t_waved = t_sched = float("inf")
    with PoolExecutor(WORKERS) as executor:
        executor.map(_nap, [(0.0, (0, 0))])  # spawn the pool outside timing
        for _ in range(2):
            elapsed, seen = _run_waved(executor)
            assert seen == expected
            t_waved = min(t_waved, elapsed)
            elapsed, seen = _run_scheduled(executor)
            assert seen == expected
            t_sched = min(t_sched, elapsed)
    gain = t_waved / t_sched
    RESULTS["waved_seconds"] = t_waved
    RESULTS["scheduled_seconds"] = t_sched
    RESULTS["overlap_gain"] = gain
    print(
        f"\n  {len(WAVES)} waves x {len(WAVES[0])} jobs: waved "
        f"{t_waved * 1e3:.0f} ms, scheduled {t_sched * 1e3:.0f} ms, "
        f"overlap gain {gain:.2f}x"
    )
    assert gain >= SCHED_FLOOR, (
        f"global in-flight window only {gain:.2f}x over wave barriers "
        f"(floor {SCHED_FLOOR}x)"
    )


def test_scheduled_all_cli_wallclock(wallclock_assertions):
    """Record the event-driven full evaluation (FAST, two jobs)."""
    from contextlib import redirect_stdout
    from io import StringIO

    from repro.experiments.runner import main

    start = time.perf_counter()
    with redirect_stdout(StringIO()) as out:
        code = main(["all", "--jobs", "2", "--max-inflight", str(MAX_INFLIGHT)])
    elapsed = time.perf_counter() - start
    assert code == 0
    assert "[done in" in out.getvalue()
    RESULTS["all_jobs2_scheduled_seconds"] = elapsed
    print(f"\n  all --jobs 2 --max-inflight {MAX_INFLIGHT}: {elapsed:.2f} s")
    # Generous ceiling: catches pathological regressions, not noise.
    assert elapsed < 120.0
