"""Figure 4 bench: sequential-fraction sweep on Hera."""

from __future__ import annotations

from repro.experiments import fig4_alpha

from conftest import emit


def test_fig4_hera(benchmark, sim_settings):
    results = benchmark.pedantic(
        lambda: fig4_alpha.run(platform="Hera", settings=sim_settings),
        rounds=1,
        iterations=1,
    )
    emit(results)
    processors, periods, overheads = results
    # P* grows as alpha decreases (numerical column, scenario 1).
    P1 = processors.column_array("sc1_optimal")
    assert all(a < b for a, b in zip(P1, P1[1:]))
    # At alpha = 0 there is no first-order solution.
    assert processors.column("sc1_first_order")[-1] is None
    # Overhead falls toward the alpha floor.
    H1 = overheads.column_array("sc1_optimal")
    assert H1[0] > H1[-1]
