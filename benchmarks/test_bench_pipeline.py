"""Fused pipeline vs per-point sequential dispatch, and the warm cache.

The acceptance bars of the batched-simulation subsystem:

* the fused pipeline (all points of a multi-figure FAST-fidelity sweep
  planned together and dispatched over **one** shared process pool)
  must be at least 3x faster than per-point sequential dispatch (one
  ``simulate_overhead`` call per point, each spinning up its own pool —
  the pre-pipeline ``--workers`` behaviour);
* a warm-cache re-run of the same sweep must be at least 10x faster
  than the sequential dispatch;
* in both cases the produced values must be **bit-identical** to the
  sequential path for the same seed.

Every measurement lands in ``BENCH_pipeline.json`` (path overridable
via ``REPRO_BENCH_PIPELINE_JSON``) so CI can archive the perf
trajectory as an artifact.  Floors derate via environment variables on
noisy shared runners, mirroring ``test_bench_vectorized.py``.
"""

from __future__ import annotations

import os
import time
from contextlib import redirect_stdout
from io import StringIO

import pytest

from repro.experiments.common import SimSettings, simulate_mean
from repro.experiments.pipeline import SimulationPipeline
from repro.experiments.runner import main
from repro.optimize.allocation import optimize_allocation
from repro.platforms.catalog import DEFAULT_ALPHA
from repro.platforms.scenarios import build_model
from repro.sim.montecarlo import FAST

SEED = 20160913

#: Fused-over-sequential floor (acceptance: 3x; derate on shared CI).
PIPELINE_FLOOR = float(os.environ.get("REPRO_BENCH_PIPELINE_FLOOR", "3.0"))
#: Warm-cache-over-sequential floor (acceptance: 10x).
WARM_CACHE_FLOOR = float(os.environ.get("REPRO_BENCH_WARM_FLOOR", "10.0"))

#: Sequential dispatch pays one process pool per point at this width —
#: exactly what ``--workers 2`` used to cost before the pipeline.
WORKERS = 2

#: Collected measurements, dumped to JSON at module teardown.
RESULTS: dict[str, float | int | str] = {
    "fidelity": f"{FAST.n_runs}x{FAST.n_patterns}",
    "seed": SEED,
    "workers": WORKERS,
}


@pytest.fixture(scope="module", autouse=True)
def write_bench_json(bench_writer):
    yield
    bench_writer("REPRO_BENCH_PIPELINE_JSON", "BENCH_pipeline.json", RESULTS)


def _pool_available() -> bool:
    """Whether this host can actually run a process pool."""
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=2) as pool:
            return list(pool.map(abs, [-1])) == [1]
    except Exception:  # pragma: no cover - sandbox-dependent
        return False


@pytest.fixture(scope="module")
def sweep_points():
    """A multi-figure sweep: fig2-, fig5- and fig7-shaped workloads."""
    points = []
    for sc in (1, 3, 5):  # fig2: optimal pattern per scenario
        model = build_model("Hera", sc, alpha=DEFAULT_ALPHA)
        sol = optimize_allocation(model)
        points.append((model, sol.period, sol.processors))
    for sc in (1, 3):  # fig5: error-rate sweep at alpha = 0.1
        for lam in (1e-10, 1e-9, 5e-9):
            model = build_model("Hera", sc, alpha=DEFAULT_ALPHA, lambda_ind=lam)
            sol = optimize_allocation(model)
            points.append((model, sol.period, sol.processors))
    for D in (600.0, 3600.0, 7200.0):  # fig7: downtime sweep
        model = build_model("Hera", 1, alpha=DEFAULT_ALPHA, downtime=D)
        sol = optimize_allocation(model)
        points.append((model, sol.period, sol.processors))
    return points


@pytest.fixture(scope="module")
def settings() -> SimSettings:
    return SimSettings(fidelity=FAST, seed=SEED, method="vectorized", workers=WORKERS)


@pytest.fixture(scope="module")
def sequential_run(sweep_points, settings):
    """(wall-clock, values) of per-point sequential dispatch, best of 2."""

    def run():
        return [simulate_mean(m, T, P, settings) for m, T, P in sweep_points]

    values = run()  # warm imports and allocator caches
    best = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        values = run()
        best = min(best, time.perf_counter() - start)
    RESULTS["n_points"] = len(sweep_points)
    RESULTS["sequential_seconds"] = best
    return best, values


def _fused_run(sweep_points, settings, cache_dir=None):
    with SimulationPipeline(jobs=WORKERS, cache_dir=cache_dir) as pipe:
        start = time.perf_counter()
        deferred = [pipe.simulate_mean(m, T, P, settings) for m, T, P in sweep_points]
        pipe.resolve()
        elapsed = time.perf_counter() - start
    return elapsed, [d.value for d in deferred]


def test_fused_pipeline_speedup_at_least_3x(
    sweep_points, settings, sequential_run, wallclock_assertions
):
    """Acceptance: fused dispatch >= 3x over per-point sequential."""
    if not _pool_available():
        pytest.skip("no process pool on this host: nothing to amortise")
    t_seq, sequential_values = sequential_run
    t_fused = float("inf")
    for _ in range(2):
        elapsed, fused_values = _fused_run(sweep_points, settings)
        t_fused = min(t_fused, elapsed)
    assert fused_values == sequential_values, "fused pipeline changed the numbers"
    speedup = t_seq / t_fused
    RESULTS["fused_seconds"] = t_fused
    RESULTS["fused_speedup"] = speedup
    print(
        f"\n  {len(sweep_points)} points: sequential {t_seq * 1e3:.0f} ms, "
        f"fused {t_fused * 1e3:.0f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= PIPELINE_FLOOR, (
        f"fused pipeline only {speedup:.1f}x faster than per-point sequential "
        f"dispatch (floor {PIPELINE_FLOOR}x)"
    )


def test_warm_cache_speedup_at_least_10x(
    sweep_points, settings, sequential_run, wallclock_assertions, tmp_path
):
    """Acceptance: warm-cache re-run >= 10x over sequential dispatch."""
    t_seq, sequential_values = sequential_run
    _fused_run(sweep_points, settings, cache_dir=tmp_path)  # populate
    t_warm = float("inf")
    for _ in range(2):
        elapsed, warm_values = _fused_run(sweep_points, settings, cache_dir=tmp_path)
        t_warm = min(t_warm, elapsed)
    assert warm_values == sequential_values, "cache served different numbers"
    speedup = t_seq / t_warm
    RESULTS["warm_cache_seconds"] = t_warm
    RESULTS["warm_cache_speedup"] = speedup
    print(
        f"\n  warm cache: {t_warm * 1e3:.1f} ms for {len(sweep_points)} points, "
        f"{speedup:.1f}x over sequential"
    )
    assert speedup >= WARM_CACHE_FLOOR, (
        f"warm cache only {speedup:.1f}x faster than sequential dispatch "
        f"(floor {WARM_CACHE_FLOOR}x)"
    )


def test_all_no_sim_wallclock(wallclock_assertions):
    """Record the analytic-only full evaluation (the CLI's fast path)."""
    start = time.perf_counter()
    with redirect_stdout(StringIO()) as out:
        code = main(["all", "--no-sim"])
    elapsed = time.perf_counter() - start
    assert code == 0
    assert "[done in" in out.getvalue()
    RESULTS["all_no_sim_seconds"] = elapsed
    print(f"\n  all --no-sim: {elapsed:.2f} s")
    # Generous ceiling: catches pathological regressions, not noise.
    assert elapsed < 60.0


def test_figure_tables_bit_identical_through_pipeline(settings):
    """Acceptance: emitted FigureResult tables match the sequential path.

    ``fig7`` exercises first-order + numerical points per row; the
    reference rows are rebuilt here with per-point ``simulate_mean``
    calls (the unchanged pre-pipeline path) at the same settings.
    """
    import numpy as np

    from repro.core.first_order import optimal_pattern
    from repro.experiments import fig7_downtime

    downtimes = np.array([0.0, 3600.0])
    with SimulationPipeline(jobs=WORKERS) as pipe:
        results = fig7_downtime.run(
            scenarios=(1, 3), downtimes=downtimes, settings=settings, pipeline=pipe
        )
    overhead_panel = next(r for r in results if r.figure_id.endswith("c_overhead"))
    for row_index, D in enumerate(downtimes):
        for col_offset, sc in enumerate((1, 3)):
            model = build_model("Hera", sc, alpha=DEFAULT_ALPHA, downtime=float(D))
            fo = optimal_pattern(model)
            num = optimize_allocation(model)
            expected_fo = simulate_mean(model, fo.period, fo.processors, settings)
            expected_num = simulate_mean(model, num.period, num.processors, settings)
            row = overhead_panel.rows[row_index]
            assert row[1 + 2 * col_offset] == expected_fo
            assert row[2 + 2 * col_offset] == expected_num
