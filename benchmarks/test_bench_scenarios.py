"""Replicate-dedup savings of the scenario lab.

A scenario set's replicate 0 keeps the master seed, so its points are
plan-key-identical to a plain run of the base study: against a warm
base-grid cache, an N-replicate scenario set computes only the N-1
resampled realizations and is served the base one.  The acceptance
bar: with 3 replicates of the Figure 5 grid, the warm-base run must
beat the cold run (which computes all 3) by
``REPRO_BENCH_SCENARIO_FLOOR`` (default 1.15x locally; the ideal gain
at 3 replicates is 1.5x).  The workload is pure single-process compute
(``jobs=1``), so the bench is 1-CPU-safe: the gain measures cache
dedup, not parallelism.  Exact (noise-free) assertions pin the served
point count and the value equality of both runs.  Every measurement
lands in ``BENCH_scenarios.json`` (path overridable via
``REPRO_BENCH_SCENARIO_JSON``) so CI can archive the perf trajectory.
"""

from __future__ import annotations

import os
import time

import pytest

import dataclasses

from repro.experiments.common import SimSettings
from repro.experiments.pipeline import SimulationPipeline
from repro.experiments.registry import REGISTRY
from repro.experiments.scenarios import Resample, ScenarioSet
from repro.experiments.spec import stage_study
from repro.sim.montecarlo import Fidelity

#: Warm-base-over-cold floor (ideal 1.5x at 3 replicates; derate on CI).
SCENARIO_FLOOR = float(os.environ.get("REPRO_BENCH_SCENARIO_FLOOR", "1.15"))

REPLICATES = 3

#: A simulation-bound workload, mirroring the sleep-bound waves of the
#: scheduler bench: the gain must measure replicate *reuse*, so the
#: per-point work is one batch-sampler call at a fixed pattern — the
#: numerical optimiser (recomputed per member, never cached, ~20 ms a
#: point) would otherwise drown out the sampling the cache saves.
SETTINGS = SimSettings(
    fidelity=Fidelity(n_runs=1000, n_patterns=500, name="bench"), method="batch"
)


def _bench_eval(ctx, model, needed):
    """Simulate the fixed pattern PATTERN(3600 s, 512) under ``model``."""
    return {"H_sim": ctx.pipeline.simulate_mean(model, 3600.0, 512.0, ctx.settings)}


#: The fig5 error-rate grid over scenarios 1/3/5, one simulated point
#: per grid cell (27 per member), no per-point optimisation.
BASE_SPEC = dataclasses.replace(
    REGISTRY["fig5"],
    name="bench_grid",
    point_eval=_bench_eval,
    panels=(
        dataclasses.replace(
            REGISTRY["fig5"].panels[2], columns=("H_sim",), notes=()
        ),
    ),
)

RESULTS: dict[str, float | int | str] = {
    "study": "fig5 error-rate grid, fixed pattern, batch sampler",
    "replicates": REPLICATES,
    "fidelity": f"{SETTINGS.fidelity.n_runs}x{SETTINGS.fidelity.n_patterns}",
}


@pytest.fixture(scope="module", autouse=True)
def write_bench_json(bench_writer):
    yield
    bench_writer("REPRO_BENCH_SCENARIO_JSON", "BENCH_scenarios.json", RESULTS)


def _scenario_run(cache_dir):
    """(elapsed, band tables, served/computed counts) of one full set."""
    sset = ScenarioSet("bench", BASE_SPEC, [Resample(REPLICATES)])
    tallies = {"served": 0, "computed": 0, "skipped": 0}
    with SimulationPipeline(jobs=1, cache_dir=cache_dir) as pipe:
        start = time.perf_counter()
        families = sset.stage(pipe, SETTINGS)
        pipe.resolve(on_event=lambda e: tallies.__setitem__(
            e.status, tallies[e.status] + 1))
        tables = [t.table() for family in families for t in family.finish()]
        elapsed = time.perf_counter() - start
    return elapsed, tables, tallies


def test_replicate_dedup_savings(wallclock_assertions, tmp_path):
    """Acceptance: warm base grid -> N-replicate set >= floor x faster."""
    # Cold: every replicate's points are computed (warm-up then best of 2).
    t_cold = float("inf")
    for i in range(2):
        elapsed, cold_tables, cold_tallies = _scenario_run(tmp_path / f"cold{i}")
        t_cold = min(t_cold, elapsed)
    assert cold_tallies["served"] == 0

    # Warm the base grid only — the plain study a user already ran.
    warm_cache = tmp_path / "warm"
    with SimulationPipeline(jobs=1, cache_dir=warm_cache) as pipe:
        stage_study(BASE_SPEC, settings=SETTINGS, pipeline=pipe)
        pipe.resolve()
    base_points = len(list(warm_cache.glob("*.npz")))

    # Each timed run gets its own copy of the base-only cache — the run
    # itself writes the resampled replicates back, and a second pass
    # over the same directory would measure the fully-warm case instead.
    import shutil

    t_warm = float("inf")
    for i in range(2):
        snapshot = tmp_path / f"warm{i}"
        shutil.copytree(warm_cache, snapshot)
        elapsed, warm_tables, warm_tallies = _scenario_run(snapshot)
        t_warm = min(t_warm, elapsed)

    # Exact: replicate 0 is served from the base run's cache, and the
    # dedup changes wall-clock only, never the aggregated bands.
    assert warm_tallies["served"] == base_points > 0
    assert warm_tables == cold_tables

    gain = t_cold / t_warm
    RESULTS["base_points"] = base_points
    RESULTS["cold_seconds"] = t_cold
    RESULTS["warm_base_seconds"] = t_warm
    RESULTS["replicate_dedup_gain"] = gain
    print(
        f"\n  {REPLICATES} replicates x {base_points} points: cold "
        f"{t_cold * 1e3:.0f} ms, warm base {t_warm * 1e3:.0f} ms, "
        f"dedup gain {gain:.2f}x"
    )
    assert gain >= SCENARIO_FLOOR, (
        f"warm-base scenario set only {gain:.2f}x over cold "
        f"(floor {SCENARIO_FLOOR}x)"
    )


def test_scenario_report_cli_wallclock(wallclock_assertions, tmp_path):
    """Record the example scenario report end to end (FAST, serial)."""
    from contextlib import redirect_stdout
    from io import StringIO
    from pathlib import Path

    from repro.experiments.runner import main

    example = Path(__file__).parents[1] / "examples" / "scenario_jitter.toml"
    start = time.perf_counter()
    with redirect_stdout(StringIO()) as out:
        code = main(
            ["scenario", "report", str(example),
             "--cache-dir", str(tmp_path / "cache")]
        )
    elapsed = time.perf_counter() - start
    assert code == 0
    assert "[bands x6]" in out.getvalue()
    RESULTS["report_seconds"] = elapsed
    print(f"\n  scenario report (6 members): {elapsed:.2f} s")
    # Generous ceiling: catches pathological regressions, not noise.
    assert elapsed < 120.0
