"""Ablations of the optimisation stack.

* nested log-zoom allocation search vs the Jin-et-al alternating
  relaxation (same optimum, different costs);
* vectorised batch period optimisation vs a scalar loop;
* log-space zoom vs a naive linear scan over the processor range.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.optimize.allocation import optimize_allocation
from repro.optimize.period import optimize_period, optimize_period_batch
from repro.optimize.relaxation import relaxation_optimize
from repro.platforms import build_model


@pytest.fixture(scope="module")
def model():
    return build_model("Hera", 1)


def test_nested_allocation_search(benchmark, model):
    result = benchmark(lambda: optimize_allocation(model))
    assert result.interior


def test_relaxation_baseline(benchmark, model):
    result = benchmark(lambda: relaxation_optimize(model))
    assert result.converged
    # Same optimum as the nested search (checked tightly in tests/).
    nested = optimize_allocation(model)
    assert abs(result.overhead - nested.overhead) / nested.overhead < 1e-5


def test_period_batch_vectorised(benchmark, model):
    P = np.linspace(128.0, 1536.0, 12)
    T, H = benchmark(lambda: optimize_period_batch(model, P))
    assert T.shape == (12,)


def test_period_scalar_loop(benchmark, model):
    P = np.linspace(128.0, 1536.0, 12)

    def run():
        return [optimize_period(model, float(p)) for p in P]

    results = benchmark(run)
    assert len(results) == 12


def test_naive_linear_scan_ablation(benchmark, model):
    """The strawman DESIGN.md rejects: integer scan over a bounded range.

    Only feasible at all because this scenario's optimum (~207) is tiny;
    the Figure 6 optima (1e9+) are unreachable by linear scan.
    """

    def run():
        P = np.arange(50.0, 1000.0, 10.0)
        T, H = optimize_period_batch(model, P)
        i = int(np.argmin(H))
        return P[i], H[i]

    P_best, H_best = benchmark(run)
    nested = optimize_allocation(model)
    assert H_best == pytest.approx(nested.overhead, rel=1e-3)
