"""Ablation: event-driven reference simulator vs vectorised sampler.

DESIGN.md's "two simulators, one distribution" choice is justified here:
both are benchmarked on the same workload (Hera scenario 1 at its
numerical optimum), so the report shows the speedup factor bought by the
closed-form vectorised sampling.  The equivalence of the distributions
is asserted statistically in ``tests/sim/test_batch.py``.
"""

from __future__ import annotations

import pytest

from repro.platforms import build_model
from repro.sim.batch import simulate_batch
from repro.sim.protocol import simulate_run
from repro.sim.rng import make_rng, spawn_rngs

#: Common workload: 20 runs x 50 patterns at the Figure-2 optimum.
N_RUNS, N_PATTERNS = 20, 50
T_OPT, P_OPT = 6554.9, 207.0


@pytest.fixture(scope="module")
def model():
    return build_model("Hera", 1)


def test_event_driven_reference(benchmark, model):
    def run():
        return [
            simulate_run(model, T_OPT, P_OPT, N_PATTERNS, rng)
            for rng in spawn_rngs(N_RUNS, seed=1)
        ]

    stats = benchmark(run)
    assert len(stats) == N_RUNS


def test_vectorised_batch(benchmark, model):
    def run():
        return simulate_batch(
            model, T_OPT, P_OPT, N_RUNS, N_PATTERNS, make_rng(1)
        )

    stats = benchmark(run)
    assert stats.n_runs == N_RUNS


def test_vectorised_batch_paper_budget(benchmark, model):
    # The full Section IV-A budget (500 x 500) in one call — the
    # vectorised path makes paper-fidelity sweeps routine.
    def run():
        return simulate_batch(model, T_OPT, P_OPT, 500, 500, make_rng(2))

    stats = benchmark(run)
    assert stats.n_runs == 500
