"""Shared configuration for the benchmark harness.

Every ``test_bench_fig*.py`` module regenerates one figure of the
paper's evaluation and prints its series (run with ``-s`` to see them);
the pytest-benchmark timings measure the cost of the regeneration
itself.  Figure benches run at a reduced Monte-Carlo fidelity so the
whole harness completes in minutes; pass ``--paper-fidelity`` to use
the paper's full 500x500 budget.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess

import pytest

from repro._version import __version__
from repro.experiments.common import SimSettings
from repro.sim.montecarlo import PAPER, Fidelity


def pytest_addoption(parser):
    parser.addoption(
        "--paper-fidelity",
        action="store_true",
        default=False,
        help="run figure benches at the paper's 500 runs x 500 patterns",
    )


@pytest.fixture
def wallclock_assertions(request) -> bool:
    """Whether hard wall-clock assertions should run.

    ``--benchmark-disable`` marks a functional (smoke) run on possibly
    noisy shared hardware; timing thresholds are skipped there.
    """
    if request.config.getoption("--benchmark-disable"):
        pytest.skip("wall-clock assertions skipped with --benchmark-disable")
    return True


@pytest.fixture(scope="session")
def sim_settings(request) -> SimSettings:
    """Monte-Carlo budget for the figure benches."""
    if request.config.getoption("--paper-fidelity"):
        return SimSettings(fidelity=PAPER, seed=20160913)
    return SimSettings(fidelity=Fidelity(n_runs=30, n_patterns=60), seed=20160913)


def _bench_metadata() -> dict:
    """Provenance block stamped into every ``BENCH_*.json``.

    Makes the perf trajectory across PRs attributable: which library
    version, which commit, when and where each measurement ran.  The
    git probe is fault-tolerant (exported tarballs, bare CI checkouts)
    and degrades to ``"unknown"`` rather than failing a bench run.
    """
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=os.path.dirname(os.path.abspath(__file__)),
            timeout=10,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        commit = ""
    return {
        "repro_version": __version__,
        "git_commit": commit or "unknown",
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "hostname": platform.node() or "unknown",
    }


@pytest.fixture(scope="session")
def bench_writer():
    """Write one ``BENCH_*.json`` with the shared metadata block.

    Usage (one module-scoped autouse fixture per bench module)::

        @pytest.fixture(scope="module", autouse=True)
        def write_bench_json(bench_writer):
            yield
            bench_writer("REPRO_BENCH_FOO_JSON", "BENCH_foo.json", RESULTS)

    The metadata is computed once per session, so every artifact of a
    run carries the identical stamp.
    """
    meta = _bench_metadata()

    def write(env_var: str, default_path: str, results: dict) -> None:
        payload = dict(results)
        payload["meta"] = meta
        path = os.environ.get(env_var, default_path)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    return write


def emit(results) -> None:
    """Print regenerated figure tables (visible with pytest -s)."""
    for result in results:
        print()
        print(result.table())
