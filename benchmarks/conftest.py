"""Shared configuration for the benchmark harness.

Every ``test_bench_fig*.py`` module regenerates one figure of the
paper's evaluation and prints its series (run with ``-s`` to see them);
the pytest-benchmark timings measure the cost of the regeneration
itself.  Figure benches run at a reduced Monte-Carlo fidelity so the
whole harness completes in minutes; pass ``--paper-fidelity`` to use
the paper's full 500x500 budget.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import SimSettings
from repro.sim.montecarlo import PAPER, Fidelity


def pytest_addoption(parser):
    parser.addoption(
        "--paper-fidelity",
        action="store_true",
        default=False,
        help="run figure benches at the paper's 500 runs x 500 patterns",
    )


@pytest.fixture
def wallclock_assertions(request) -> bool:
    """Whether hard wall-clock assertions should run.

    ``--benchmark-disable`` marks a functional (smoke) run on possibly
    noisy shared hardware; timing thresholds are skipped there.
    """
    if request.config.getoption("--benchmark-disable"):
        pytest.skip("wall-clock assertions skipped with --benchmark-disable")
    return True


@pytest.fixture(scope="session")
def sim_settings(request) -> SimSettings:
    """Monte-Carlo budget for the figure benches."""
    if request.config.getoption("--paper-fidelity"):
        return SimSettings(fidelity=PAPER, seed=20160913)
    return SimSettings(fidelity=Fidelity(n_runs=30, n_patterns=60), seed=20160913)


def emit(results) -> None:
    """Print regenerated figure tables (visible with pytest -s)."""
    for result in results:
        print()
        print(result.table())
