"""Figure 2 bench: optimal patterns per scenario on all four platforms.

Prints, per platform, the same series the paper plots: first-order vs
numerical P* and T*, and predicted vs simulated overheads for the six
resilience scenarios.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig2_scenarios
from repro.platforms import PLATFORM_NAMES

from conftest import emit


@pytest.mark.parametrize("platform", PLATFORM_NAMES)
def test_fig2_platform(benchmark, sim_settings, platform):
    results = benchmark.pedantic(
        lambda: fig2_scenarios.run(platform=platform, settings=sim_settings),
        rounds=1,
        iterations=1,
    )
    emit(results)
    table = results[0]
    # Shape assertions mirroring the paper (Section IV-B.1).
    H_sim = [h for h in table.column("H_optimal_sim") if h is not None]
    assert all(0.10 < h < 0.13 for h in H_sim)
    assert table.column("P*_first_order")[5] is None  # scenario 6 numerical-only
