"""Figure 7 bench: downtime sweep on Hera."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig7_downtime

from conftest import emit


def test_fig7_hera(benchmark, sim_settings):
    results = benchmark.pedantic(
        lambda: fig7_downtime.run(platform="Hera", settings=sim_settings),
        rounds=1,
        iterations=1,
    )
    emit(results)
    processors, periods, overheads = results
    # First-order P* does not depend on D; numerical P* decreases.
    fo = processors.column_array("sc1_first_order")
    assert fo.max() == fo.min()
    num = processors.column_array("sc1_optimal")
    assert num[0] > num[-1]
    # Yet the simulated overheads of the two stay nearly identical.
    H_fo = overheads.column_array("sc1_first_order")
    H_num = overheads.column_array("sc1_optimal")
    assert np.all(np.abs(H_fo - H_num) / H_num < 0.05)
